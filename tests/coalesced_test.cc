// Tests for the coalesced rule/goal graph (§2.2 end, footnote 4):
// goal nodes with identical predicate + binding pattern are shared,
// the graph becomes a general digraph without cycle-reference nodes,
// size becomes linear in the number of distinct binding patterns (the
// exponential blow-up disappears), multiple SCC members can have
// outside customers, and the extended termination protocol still ends
// exactly on completion.

#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "common/random.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

constexpr const char* kP1 = R"(
  p(X, Y) :- p(X, V), q(V, W), p(W, Y).
  p(X, Y) :- r(X, Y).
  ?- p(a, Z).
)";

GraphBuildOptions Coalesced() {
  GraphBuildOptions options;
  options.coalesce_nodes = true;
  return options;
}

EvaluationOptions CoalescedEval() {
  EvaluationOptions options;
  options.graph_options.coalesce_nodes = true;
  return options;
}

TEST(CoalescedGraphTest, P1HasNoCycleRefsAndFewerNodes) {
  auto unit = Parse(kP1);
  ASSERT_TRUE(unit.ok());
  ASSERT_TRUE(unit->program.Validate(&unit->database).ok());
  auto strategy = MakeGreedyStrategy();
  auto plain = RuleGoalGraph::Build(unit->program, *strategy);
  auto shared = RuleGoalGraph::Build(unit->program, *strategy, Coalesced());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(shared.ok());
  EXPECT_TRUE((*shared)->coalesced());
  EXPECT_FALSE((*plain)->coalesced());
  EXPECT_EQ((*shared)->Stats().cycle_refs, 0u);
  EXPECT_LT((*shared)->size(), (*plain)->size());
  // Two p binding patterns (cf, df); the recursive rule's second df
  // occurrence gets its own node (one producer never serves two
  // subgoals of one rule) -> exactly three p goal nodes.
  size_t p_goals = 0;
  for (const GraphNode& n : (*shared)->nodes()) {
    if (n.kind == NodeKind::kGoal &&
        (*shared)->program().predicates().Name(n.atom.predicate) == "p") {
      ++p_goals;
    }
  }
  EXPECT_EQ(p_goals, 3u);
}

TEST(CoalescedGraphTest, SharedNodesHaveMultipleCustomers) {
  auto unit = Parse(kP1);
  ASSERT_TRUE(unit.ok());
  ASSERT_TRUE(unit->program.Validate(&unit->database).ok());
  auto strategy = MakeGreedyStrategy();
  auto graph = RuleGoalGraph::Build(unit->program, *strategy, Coalesced());
  ASSERT_TRUE(graph.ok());
  bool some_shared = false;
  for (const GraphNode& n : (*graph)->nodes()) {
    if (n.customers.size() > 1) some_shared = true;
  }
  EXPECT_TRUE(some_shared);
}

TEST(CoalescedGraphTest, SameRuleDuplicateSubgoalsNotShared) {
  // tc(X,Y) :- tc(X,Z), tc(Z,Y): both recursive subgoals have the df
  // pattern; they must stay distinct children of that rule node.
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 4).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  ASSERT_TRUE(program.Validate(&db).ok());
  auto strategy = MakeGreedyStrategy();
  auto graph = RuleGoalGraph::Build(program, *strategy, Coalesced());
  ASSERT_TRUE(graph.ok());
  for (const GraphNode& n : (*graph)->nodes()) {
    if (n.kind != NodeKind::kRule) continue;
    std::set<NodeId> unique(n.subgoal_children.begin(),
                            n.subgoal_children.end());
    EXPECT_EQ(unique.size(), n.subgoal_children.size())
        << "rule node " << n.id << " shares a child between subgoals";
  }
}

TEST(CoalescedGraphTest, BfstSpansEveryScc) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "q", 4).ok());
  ASSERT_TRUE(workload::MakeChain(db, "r", 4).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::P1Program(0), program, db).ok());
  ASSERT_TRUE(program.Validate(&db).ok());
  auto strategy = MakeGreedyStrategy();
  auto graph = RuleGoalGraph::Build(program, *strategy, Coalesced());
  ASSERT_TRUE(graph.ok());
  for (int scc = 0; scc < (*graph)->scc_count(); ++scc) {
    const auto& members = (*graph)->scc_members(scc);
    if (members.size() == 1) continue;
    NodeId leader = (*graph)->scc_leader(scc);
    ASSERT_NE(leader, kNoNode);
    EXPECT_TRUE((*graph)->node(leader).is_leader);
    // Every member reachable from the leader via bfst_children.
    std::set<NodeId> reached{leader};
    std::vector<NodeId> frontier{leader};
    while (!frontier.empty()) {
      NodeId u = frontier.back();
      frontier.pop_back();
      for (NodeId v : (*graph)->node(u).bfst_children) {
        if (reached.insert(v).second) frontier.push_back(v);
      }
    }
    EXPECT_EQ(reached.size(), members.size()) << "scc " << scc;
  }
}

TEST(CoalescedGraphTest, ExponentialBlowupGone) {
  // Layered nonlinear closures explode without coalescing; with it the
  // graph is linear in the layer count.
  auto make_text = [](int layers) {
    std::string text =
        "t0(X, Y) :- edge(X, Y).\nt0(X, Y) :- edge(X, Z), t0(Z, Y).\n";
    for (int i = 1; i <= layers; ++i) {
      text += StrCat("t", i, "(X, Y) :- t", i - 1, "(X, Y).\n");
      text += StrCat("t", i, "(X, Y) :- t", i - 1, "(X, Z), t", i,
                     "(Z, Y).\n");
    }
    text += StrCat("?- t", layers, "(0, W).\n");
    return text;
  };
  auto unit = Parse(make_text(16));
  ASSERT_TRUE(unit.ok());
  ASSERT_TRUE(unit->program.Validate(&unit->database).ok());
  auto strategy = MakeGreedyStrategy();
  // Without coalescing 16 layers exceed 100k nodes (checked by the
  // builder error); with coalescing it is tiny.
  auto plain = RuleGoalGraph::Build(unit->program, *strategy);
  EXPECT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kResourceExhausted);
  auto shared = RuleGoalGraph::Build(unit->program, *strategy, Coalesced());
  ASSERT_TRUE(shared.ok()) << shared.status();
  EXPECT_LT((*shared)->size(), 400u);
}

TEST(CoalescedEngineTest, CanonicalQueriesMatchPlainEngine) {
  struct Case {
    const char* name;
    std::string program;
    std::string shape;
    int64_t n;
  } cases[] = {
      {"linear_chain", workload::LinearTcProgram(0), "chain", 24},
      {"linear_cycle", workload::LinearTcProgram(0), "cycle", 12},
      {"nonlinear_tree", workload::NonlinearTcProgram(0), "tree", 15},
      {"left_recursive", workload::LeftRecursiveTcProgram(0), "chain", 16},
  };
  for (const auto& c : cases) {
    Database db1, db2;
    for (Database* db : {&db1, &db2}) {
      if (c.shape == "chain") {
        ASSERT_TRUE(workload::MakeChain(*db, "edge", c.n).ok());
      } else if (c.shape == "cycle") {
        ASSERT_TRUE(workload::MakeCycle(*db, "edge", c.n).ok());
      } else {
        ASSERT_TRUE(workload::MakeBinaryTree(*db, "edge", c.n).ok());
      }
    }
    Program p1, p2;
    ASSERT_TRUE(ParseInto(c.program, p1, db1).ok());
    ASSERT_TRUE(ParseInto(c.program, p2, db2).ok());
    auto plain = Evaluate(p1, db1);
    auto shared = Evaluate(p2, db2, CoalescedEval());
    ASSERT_TRUE(plain.ok()) << c.name << ": " << plain.status();
    ASSERT_TRUE(shared.ok()) << c.name << ": " << shared.status();
    EXPECT_TRUE(plain->answers == shared->answers) << c.name;
    EXPECT_TRUE(shared->ended_by_protocol) << c.name;
    // (Stored-tuple counts can go either way: sharing merges identical
    // work across rules, but duplicate subgoal occurrences of one rule
    // keep separate nodes that each store their stream.)
  }
}

TEST(CoalescedEngineTest, MultiEntrySccServesAllCustomers) {
  // even/odd form one SCC; `both` queries even AND odd from outside,
  // so with coalescing the component has two members with external
  // customers — exercising work notices and the conclusion broadcast.
  auto text = R"(
    zero(0).
    succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4). succ(4, 5).
    succ(5, 6). succ(6, 7).
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    adj(X, Y) :- succ(X, Y).
    goal(X, Y) :- even(X), odd(Y), adj(X, Y).
  )";
  auto unit = Parse(text);
  ASSERT_TRUE(unit.ok());
  auto truth = SemiNaiveBottomUp(unit->program, unit->database);
  ASSERT_TRUE(truth.ok());

  for (uint64_t seed = 0; seed < 15; ++seed) {
    auto unit2 = Parse(text);
    ASSERT_TRUE(unit2.ok());
    EvaluationOptions options = CoalescedEval();
    options.scheduler = SchedulerKind::kRandom;
    options.seed = seed;
    auto result = Evaluate(unit2->program, unit2->database, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->ended_by_protocol) << "seed " << seed;
    EXPECT_TRUE(result->answers == truth->goal) << "seed " << seed;
  }
}

class CoalescedRandomEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalescedRandomEquivalence, MatchesSemiNaive) {
  Rng rng(GetParam());
  workload::RandomProgramOptions options;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());
  auto truth = SemiNaiveBottomUp(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(truth.ok());
  EvaluationOptions eval = CoalescedEval();
  eval.max_messages = 5000000;
  auto result = Evaluate(rp->unit.program, rp->unit.database, eval);
  ASSERT_TRUE(result.ok()) << result.status() << "\n" << rp->text;
  EXPECT_TRUE(result->ended_by_protocol) << rp->text;
  EXPECT_TRUE(result->answers == truth->goal)
      << rp->text << "\nengine: " << result->answers.ToString()
      << "\ntruth:  " << truth->goal.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescedRandomEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

// The dense shapes that blow up without coalescing now evaluate fully.
class CoalescedDenseEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalescedDenseEquivalence, MatchesSemiNaive) {
  Rng rng(GetParam());
  workload::RandomProgramOptions options;
  options.idb_predicates = 4;
  options.rules_per_idb = 3;
  options.max_body_atoms = 4;
  options.recursion_bias = 0.7;
  options.edb_nodes = 8;
  options.edb_facts_per_relation = 16;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());
  auto truth = SemiNaiveBottomUp(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(truth.ok());
  EvaluationOptions eval = CoalescedEval();
  eval.max_messages = 20000000;
  auto result = Evaluate(rp->unit.program, rp->unit.database, eval);
  ASSERT_TRUE(result.ok()) << result.status() << "\n" << rp->text;
  EXPECT_TRUE(result->ended_by_protocol);
  EXPECT_TRUE(result->answers == truth->goal)
      << rp->text << "\nengine: " << result->answers.ToString()
      << "\ntruth:  " << truth->goal.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescedDenseEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{25}));

TEST(CoalescedEngineTest, RandomSchedulesOnCoalescedGraph) {
  Rng rng(3);
  workload::RandomProgramOptions options;
  options.recursion_bias = 0.6;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());
  auto truth = SemiNaiveBottomUp(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(truth.ok());
  for (uint64_t seed = 0; seed < 12; ++seed) {
    EvaluationOptions eval = CoalescedEval();
    eval.scheduler = SchedulerKind::kRandom;
    eval.seed = seed;
    eval.max_messages = 5000000;
    auto result = Evaluate(rp->unit.program, rp->unit.database, eval);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->ended_by_protocol) << "seed " << seed;
    EXPECT_TRUE(result->answers == truth->goal) << "seed " << seed;
  }
}

TEST(CoalescedEngineTest, ThreadedSchedulerOnCoalescedGraph) {
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 10).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  auto truth = SemiNaiveBottomUp(program, db);
  ASSERT_TRUE(truth.ok());
  for (int workers : {1, 4}) {
    Database db2;
    ASSERT_TRUE(workload::MakeCycle(db2, "edge", 10).ok());
    Program p2;
    ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), p2, db2).ok());
    EvaluationOptions eval = CoalescedEval();
    eval.scheduler = SchedulerKind::kThreaded;
    eval.workers = workers;
    auto result = Evaluate(p2, db2, eval);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->ended_by_protocol);
    EXPECT_TRUE(result->answers == truth->goal) << workers << " workers";
  }
}

TEST(CoalescedEngineTest, MessageSavingsOnSharedWork) {
  // Two query rules touch the same tc relation with the same binding
  // pattern: coalescing shares the whole computation.
  auto text = R"(
    marked(3). marked(9).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    goal(X) :- marked(M), tc(M, X).
    goal(X) :- tc(0, X).
  )";
  Database db1, db2;
  ASSERT_TRUE(workload::MakeChain(db1, "edge", 16).ok());
  ASSERT_TRUE(workload::MakeChain(db2, "edge", 16).ok());
  Program p1, p2;
  ASSERT_TRUE(ParseInto(text, p1, db1).ok());
  ASSERT_TRUE(ParseInto(text, p2, db2).ok());
  auto plain = Evaluate(p1, db1);
  auto shared = Evaluate(p2, db2, CoalescedEval());
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_TRUE(shared.ok()) << shared.status();
  EXPECT_TRUE(plain->answers == shared->answers);
  EXPECT_LT(shared->counters.stored_tuples, plain->counters.stored_tuples);
  EXPECT_LT(shared->graph_stats.node_count, plain->graph_stats.node_count);
}

}  // namespace
}  // namespace mpqe
