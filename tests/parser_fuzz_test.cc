// Parser robustness: random byte soup and random token sequences must
// never crash — they either parse or return InvalidArgument. Valid
// programs must round-trip through printing and re-parsing to the
// same rule structure.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  std::string text;
  size_t length = rng.Below(400);
  for (size_t i = 0; i < length; ++i) {
    text.push_back(static_cast<char>(rng.Range(1, 127)));
  }
  auto unit = Parse(text);
  // Either outcome is fine; no crash, and errors carry a message.
  if (!unit.ok()) {
    EXPECT_FALSE(unit.status().message().empty());
  }
}

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam() + 100);
  const char* tokens[] = {"p",  "q",   "X",  "Y",  "(",    ")",  ",",
                          ".",  ":-",  "?-", "42", "-7",   "_",  "%c\n",
                          "\"s\"", " ", "\n", "abc", "Zz9", "0"};
  std::string text;
  size_t count = rng.Below(120);
  for (size_t i = 0; i < count; ++i) {
    text += tokens[rng.Below(std::size(tokens))];
    if (rng.Chance(0.4)) text += " ";
  }
  auto unit = Parse(text);
  if (!unit.ok()) {
    EXPECT_FALSE(unit.status().message().empty());
  }
}

TEST_P(ParserFuzz, ValidProgramsRoundTrip) {
  Rng rng(GetParam() + 200);
  workload::RandomProgramOptions options;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());

  // Print the program's rules and re-parse them (facts live in the DB,
  // so print them separately as ground atoms).
  std::string text;
  for (const std::string& name : rp->unit.database.RelationNames()) {
    const Relation* rel = rp->unit.database.GetRelation(name);
    for (const Tuple& t : rel->SortedTuples()) {
      text += StrCat(
          name, "(",
          StrJoin(t, ", ",
                  [&](std::ostream& os, const Value& v) {
                    os << v.ToString(&rp->unit.database.symbols());
                  }),
          ").\n");
    }
  }
  // Variable names in printed rules carry clause suffixes like "V0#3",
  // which the parser cannot read back; sanitize '#' to '_'.
  std::string rules = rp->unit.program.ToString(&rp->unit.database.symbols());
  for (char& ch : rules) {
    if (ch == '#') ch = '_';
  }
  text += rules;

  auto reparsed = Parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_EQ(reparsed->program.rules().size(),
            rp->unit.program.rules().size());
  EXPECT_EQ(reparsed->database.TotalFacts(), rp->unit.database.TotalFacts());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

}  // namespace
}  // namespace mpqe
