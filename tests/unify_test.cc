// Unit tests for unification: substitutions, mgu, renaming, variants.

#include <gtest/gtest.h>

#include "datalog/unify.h"

namespace mpqe {
namespace {

Term V(VariableId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value::Int(c)); }

Atom MakeAtom(PredicateId p, std::vector<Term> args) {
  Atom a;
  a.predicate = p;
  a.args = std::move(args);
  return a;
}

TEST(SubstitutionTest, ResolveFollowsChains) {
  Substitution s;
  s.Bind(0, V(1));
  s.Bind(1, C(7));
  EXPECT_EQ(s.Resolve(V(0)), C(7));
  EXPECT_EQ(s.Resolve(V(2)), V(2));
  EXPECT_EQ(s.Resolve(C(3)), C(3));
}

TEST(SubstitutionTest, StaysIdempotent) {
  Substitution s;
  s.Bind(0, V(1));
  s.Bind(1, V(2));
  // Binding 1 := 2 must rewrite the image of 0.
  auto img = s.Lookup(0);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(*img, V(2));
}

TEST(SubstitutionTest, ApplyToAtom) {
  Substitution s;
  s.Bind(0, C(5));
  Atom a = MakeAtom(1, {V(0), V(9), C(2)});
  Atom out = s.Apply(a);
  EXPECT_EQ(out.args[0], C(5));
  EXPECT_EQ(out.args[1], V(9));
  EXPECT_EQ(out.args[2], C(2));
}

TEST(MguTest, UnifiesVariableWithConstant) {
  Atom a = MakeAtom(0, {V(0), V(1)});
  Atom b = MakeAtom(0, {C(1), C(2)});
  auto mgu = Mgu(a, b);
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(mgu->Apply(a), b);
}

TEST(MguTest, UnifiesVariableWithVariable) {
  Atom a = MakeAtom(0, {V(0), V(0)});
  Atom b = MakeAtom(0, {V(1), V(2)});
  auto mgu = Mgu(a, b);
  ASSERT_TRUE(mgu.has_value());
  // After unification all of 0,1,2 resolve to the same term.
  Term t = mgu->Resolve(V(0));
  EXPECT_EQ(mgu->Resolve(V(1)), t);
  EXPECT_EQ(mgu->Resolve(V(2)), t);
}

TEST(MguTest, FailsOnConstantClash) {
  EXPECT_FALSE(Mgu(MakeAtom(0, {C(1)}), MakeAtom(0, {C(2)})).has_value());
}

TEST(MguTest, FailsOnPredicateMismatch) {
  EXPECT_FALSE(Mgu(MakeAtom(0, {C(1)}), MakeAtom(1, {C(1)})).has_value());
}

TEST(MguTest, FailsOnRepeatedVariableClash) {
  // p(X, X) cannot unify with p(1, 2).
  EXPECT_FALSE(
      Mgu(MakeAtom(0, {V(0), V(0)}), MakeAtom(0, {C(1), C(2)})).has_value());
}

TEST(MguTest, RepeatedVariableOk) {
  auto mgu = Mgu(MakeAtom(0, {V(0), V(0)}), MakeAtom(0, {C(1), V(5)}));
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(mgu->Resolve(V(5)), C(1));
  EXPECT_EQ(mgu->Resolve(V(0)), C(1));
}

TEST(MguTest, IsMostGeneral) {
  // p(X, Y) with p(U, V): no constants should appear.
  auto mgu = Mgu(MakeAtom(0, {V(0), V(1)}), MakeAtom(0, {V(2), V(3)}));
  ASSERT_TRUE(mgu.has_value());
  EXPECT_TRUE(mgu->Resolve(V(0)).is_variable());
  EXPECT_TRUE(mgu->Resolve(V(1)).is_variable());
}

TEST(RenameApartTest, ProducesFreshVariables) {
  VariablePool pool;
  VariableId x = pool.Intern("X");
  VariableId y = pool.Intern("Y");
  Rule rule;
  rule.head = MakeAtom(0, {V(x), V(y)});
  rule.body = {MakeAtom(1, {V(x), V(y)})};
  Rule renamed = RenameApart(rule, pool);
  EXPECT_NE(renamed.head.args[0].var(), x);
  EXPECT_NE(renamed.head.args[1].var(), y);
  // Structure preserved: head vars == body vars.
  EXPECT_EQ(renamed.head.args[0], renamed.body[0].args[0]);
  EXPECT_EQ(renamed.head.args[1], renamed.body[0].args[1]);
  EXPECT_NE(renamed.head.args[0], renamed.head.args[1]);
}

TEST(VariantTest, RenamingIsVariant) {
  EXPECT_TRUE(
      IsVariant(MakeAtom(0, {V(0), V(1)}), MakeAtom(0, {V(7), V(8)})));
}

TEST(VariantTest, RepeatedPatternMustMatch) {
  EXPECT_FALSE(IsVariant(MakeAtom(0, {V(0), V(0)}), MakeAtom(0, {V(1), V(2)})));
  EXPECT_FALSE(IsVariant(MakeAtom(0, {V(1), V(2)}), MakeAtom(0, {V(0), V(0)})));
  EXPECT_TRUE(IsVariant(MakeAtom(0, {V(0), V(0)}), MakeAtom(0, {V(5), V(5)})));
}

TEST(VariantTest, ConstantsMustMatchExactly) {
  EXPECT_TRUE(IsVariant(MakeAtom(0, {C(1), V(0)}), MakeAtom(0, {C(1), V(9)})));
  EXPECT_FALSE(IsVariant(MakeAtom(0, {C(1), V(0)}), MakeAtom(0, {C(2), V(9)})));
  EXPECT_FALSE(IsVariant(MakeAtom(0, {C(1), V(0)}), MakeAtom(0, {V(9), C(1)})));
}

TEST(VariantTest, BijectivityRequired) {
  // p(X, Y) vs p(Z, Z): map would need X->Z and Y->Z, not injective.
  EXPECT_FALSE(IsVariant(MakeAtom(0, {V(0), V(1)}), MakeAtom(0, {V(2), V(2)})));
}

TEST(VariantTest, VariantIsEquivalenceOnSamples) {
  // Reflexive, symmetric on a few shapes.
  std::vector<Atom> atoms = {
      MakeAtom(0, {V(0), V(1)}), MakeAtom(0, {V(1), V(0)}),
      MakeAtom(0, {V(2), V(2)}), MakeAtom(0, {C(3), V(4)})};
  for (const Atom& a : atoms) {
    EXPECT_TRUE(IsVariant(a, a));
    for (const Atom& b : atoms) {
      EXPECT_EQ(IsVariant(a, b), IsVariant(b, a));
    }
  }
}

}  // namespace
}  // namespace mpqe
