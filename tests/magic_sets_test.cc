// Tests for the magic-sets baseline: answer equivalence with the
// message-passing engine and with plain semi-naive, plus the rewrite's
// relevance restriction (derived-tuple counts near the engine's, far
// below whole-model evaluation on bound queries).

#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "baseline/magic_sets.h"
#include "common/random.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

Tuple T1(int64_t a) { return {Value::Int(a)}; }

TEST(MagicSetsTest, BoundTransitiveClosure) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 16).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(8), program, db).ok());
  auto strategy = MakeGreedyStrategy();
  auto result = MagicSetsEvaluate(program, db, *strategy);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->evaluation.goal.size(), 7u);  // 9..15
  EXPECT_TRUE(result->evaluation.goal.Contains(T1(15)));
  EXPECT_FALSE(result->evaluation.goal.Contains(T1(8)));
  EXPECT_GT(result->magic_rules, 0u);
  EXPECT_GE(result->adorned_predicates, 2u);  // goal + tc__bf
}

TEST(MagicSetsTest, RestrictsToRelevantTuples) {
  // Query bound to the chain midpoint: magic sets must derive ~4x
  // fewer tuples than whole-model semi-naive (same shape as the
  // engine's sideways passing, E4).
  Database db1, db2;
  ASSERT_TRUE(workload::MakeChain(db1, "edge", 64).ok());
  ASSERT_TRUE(workload::MakeChain(db2, "edge", 64).ok());
  Program p1, p2;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(32), p1, db1).ok());
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(32), p2, db2).ok());
  auto strategy = MakeGreedyStrategy();
  auto magic = MagicSetsEvaluate(p1, db1, *strategy);
  auto whole = SemiNaiveBottomUp(p2, db2);
  ASSERT_TRUE(magic.ok());
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(magic->evaluation.goal == whole->goal);
  EXPECT_LT(magic->evaluation.total_derived * 2, whole->total_derived);
}

TEST(MagicSetsTest, NonlinearRecursion) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 10).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  auto strategy = MakeGreedyStrategy();
  auto result = MagicSetsEvaluate(program, db, *strategy);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->evaluation.goal.size(), 9u);
}

TEST(MagicSetsTest, PaperP1) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "q", 8).ok());
  ASSERT_TRUE(workload::MakeChain(db, "r", 8).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::P1Program(0), program, db).ok());
  auto strategy = MakeGreedyStrategy();
  auto magic = MagicSetsEvaluate(program, db, *strategy);
  ASSERT_TRUE(magic.ok()) << magic.status();

  Database db2;
  ASSERT_TRUE(workload::MakeChain(db2, "q", 8).ok());
  ASSERT_TRUE(workload::MakeChain(db2, "r", 8).ok());
  Program p2;
  ASSERT_TRUE(ParseInto(workload::P1Program(0), p2, db2).ok());
  auto truth = SemiNaiveBottomUp(p2, db2);
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(magic->evaluation.goal == truth->goal);
}

TEST(MagicSetsTest, MutualRecursion) {
  auto unit = Parse(R"(
    zero(0).
    succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4). succ(4, 5).
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    ?- even(N).
  )");
  ASSERT_TRUE(unit.ok());
  auto strategy = MakeGreedyStrategy();
  auto result =
      MagicSetsEvaluate(unit->program, unit->database, *strategy);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->evaluation.goal.size(), 3u);
}

TEST(MagicSetsTest, SameGenerationBoundQuery) {
  auto unit = Parse(R"(
    person(a). person(b). person(c). person(d).
    par(b, a). par(c, a). par(d, b).
    sg(X, X) :- person(X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
    ?- sg(b, W).
  )");
  ASSERT_TRUE(unit.ok());
  auto strategy = MakeGreedyStrategy();
  auto result =
      MagicSetsEvaluate(unit->program, unit->database, *strategy);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->evaluation.goal.size(), 2u);
}

TEST(MagicSetsTest, TransformedProgramIsInspectable) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 4).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  auto strategy = MakeGreedyStrategy();
  auto result = MagicSetsEvaluate(program, db, *strategy);
  ASSERT_TRUE(result.ok());
  std::string text = result->transformed.ToString(&db.symbols());
  EXPECT_NE(text.find("m__tc__bf"), std::string::npos);
  EXPECT_NE(text.find("tc__bf"), std::string::npos);
  EXPECT_NE(text.find("goal("), std::string::npos);
}

class MagicSetsEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MagicSetsEquivalence, MatchesSemiNaiveAndEngine) {
  Rng rng(GetParam() + 2000);
  workload::RandomProgramOptions options;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());

  auto truth = SemiNaiveBottomUp(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(truth.ok());

  auto strategy = MakeGreedyStrategy();
  auto magic =
      MagicSetsEvaluate(rp->unit.program, rp->unit.database, *strategy);
  ASSERT_TRUE(magic.ok()) << magic.status() << "\n" << rp->text;
  EXPECT_TRUE(magic->evaluation.goal == truth->goal)
      << rp->text << "\nmagic: " << magic->evaluation.goal.ToString()
      << "\ntruth: " << truth->goal.ToString() << "\ntransformed:\n"
      << magic->transformed.ToString(&rp->unit.database.symbols());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicSetsEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

}  // namespace
}  // namespace mpqe
