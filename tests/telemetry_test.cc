// Tests of the engine-wide telemetry layer (DESIGN.md §12): gauge and
// registry concurrency, session-completion aggregation into the
// engine-lifetime registry, the query log ring with its slow-query
// threshold, the Prometheus text serializer (pinned golden), and the
// /metrics | /queries | /healthz stats endpoint end-to-end over a real
// socket. The concurrency cases double as the TSan coverage for the
// scrape-while-sessions-run claim.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "engine/stats_server.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/telemetry.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

constexpr const char* kTcFacts = R"(
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 2). edge(2, 5).
)";

constexpr const char* kTcRules = R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
)";

// Blocking HTTP/1.0 GET against 127.0.0.1:port; returns the full
// response (head + body), or "" on connect/send failure.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t head_end = response.find("\r\n\r\n");
  return head_end == std::string::npos ? "" : response.substr(head_end + 4);
}

// As HttpGet, but with an arbitrary request line / raw request text —
// for exercising the server's non-GET and malformed-request paths.
std::string HttpRaw(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// ---------------------------------------------------------------------------
// Registry primitives

TEST(TelemetryTest, GaugeSetAddAndConcurrentUpdates) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);

  // 8 threads x 1000 balanced +1/-1 pairs must cancel exactly: the
  // CAS-loop Add loses no updates under contention.
  gauge.Set(0.0);
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kIters; ++i) {
        gauge.Add(1.0);
        gauge.Add(-1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(TelemetryTest, RegistryDumpsAreSortedRegardlessOfRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("z/last").Increment(1);
  registry.GetCounter("a/first").Increment(2);
  registry.GetCounter("m/middle").Increment(3);
  registry.GetGauge("z/gauge").Set(1.0);
  registry.GetGauge("a/gauge").Set(2.0);

  auto counters = registry.CounterRows();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "a/first");
  EXPECT_EQ(counters[1].first, "m/middle");
  EXPECT_EQ(counters[2].first, "z/last");

  auto gauges = registry.GaugeRows();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0].first, "a/gauge");
  EXPECT_EQ(gauges[1].first, "z/gauge");
}

TEST(TelemetryTest, MergeFromAddsCountersMergesHistogramsSkipsGauges) {
  MetricsRegistry engine_reg;
  engine_reg.GetCounter("msg/delivered").Increment(10);
  engine_reg.GetHistogram("lat").Record(100);
  engine_reg.GetGauge("active").Set(3.0);

  MetricsRegistry session;
  session.GetCounter("msg/delivered").Increment(5);
  session.GetCounter("node/fires").Increment(7);
  session.GetHistogram("lat").Record(200);
  session.GetGauge("active").Set(99.0);

  engine_reg.MergeFrom(session);
  EXPECT_EQ(engine_reg.GetCounter("msg/delivered").value(), 15u);
  EXPECT_EQ(engine_reg.GetCounter("node/fires").value(), 7u);
  EXPECT_EQ(engine_reg.GetHistogram("lat").count(), 2u);
  EXPECT_EQ(engine_reg.GetHistogram("lat").sum(), 300u);
  // Gauges are levels, not deltas — the merge must not touch them.
  EXPECT_DOUBLE_EQ(engine_reg.GetGauge("active").value(), 3.0);
}

TEST(TelemetryTest, ConcurrentRegistryMergesAndReads) {
  // Sessions merging while a scraper serializes: no torn state, and
  // the final counter total is exact.
  MetricsRegistry engine_reg;
  engine_reg.GetCounter("msg/delivered");  // family exists from scrape one
  constexpr int kThreads = 4;
  constexpr int kMerges = 50;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      std::string text = ToPrometheusText(engine_reg);
      ASSERT_NE(text.find("# TYPE"), std::string::npos);
    }
  });
  std::vector<std::thread> sessions;
  for (int t = 0; t < kThreads; ++t) {
    sessions.emplace_back([&engine_reg] {
      for (int i = 0; i < kMerges; ++i) {
        MetricsRegistry session;
        session.GetCounter("msg/delivered").Increment(2);
        session.GetHistogram("msg/handle_ns").Record(50);
        engine_reg.MergeFrom(session);
      }
    });
  }
  for (auto& t : sessions) t.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(engine_reg.GetCounter("msg/delivered").value(),
            static_cast<uint64_t>(kThreads) * kMerges * 2);
  EXPECT_EQ(engine_reg.GetHistogram("msg/handle_ns").count(),
            static_cast<uint64_t>(kThreads) * kMerges);
}

// ---------------------------------------------------------------------------
// Prometheus serializer

TEST(TelemetryTest, PrometheusGoldenScrape) {
  // Pinned, byte-for-byte: the exposition of a small registry covering
  // all three types, label folding (per-node and per-kind paths), and
  // the cumulative histogram with folded trailing zeros.
  MetricsRegistry registry;
  registry.GetCounter("msg/sent/tuple").Increment(12);
  registry.GetCounter("msg/sent/end").Increment(3);
  registry.GetCounter("node/7/fires").Increment(4);
  registry.GetGauge("engine/active_sessions").Set(2);
  Histogram& h = registry.GetHistogram("engine/prepare_ns");
  h.Record(0);
  h.Record(5);
  h.Record(6);

  const std::string expected =
      "# HELP mpqe_engine_active_sessions gauge from registry path "
      "'engine/active_sessions'\n"
      "# TYPE mpqe_engine_active_sessions gauge\n"
      "mpqe_engine_active_sessions 2\n"
      "# HELP mpqe_engine_prepare_ns histogram from registry path "
      "'engine/prepare_ns'\n"
      "# TYPE mpqe_engine_prepare_ns histogram\n"
      "mpqe_engine_prepare_ns_bucket{le=\"0\"} 1\n"
      "mpqe_engine_prepare_ns_bucket{le=\"1\"} 1\n"
      "mpqe_engine_prepare_ns_bucket{le=\"3\"} 1\n"
      "mpqe_engine_prepare_ns_bucket{le=\"7\"} 3\n"
      "mpqe_engine_prepare_ns_bucket{le=\"+Inf\"} 3\n"
      "mpqe_engine_prepare_ns_sum 11\n"
      "mpqe_engine_prepare_ns_count 3\n"
      "# HELP mpqe_msg_sent counter from registry path 'msg/sent/end'\n"
      "# TYPE mpqe_msg_sent counter\n"
      "mpqe_msg_sent{kind=\"end\"} 3\n"
      "mpqe_msg_sent{kind=\"tuple\"} 12\n"
      "# HELP mpqe_node_fires counter from registry path 'node/7/fires'\n"
      "# TYPE mpqe_node_fires counter\n"
      "mpqe_node_fires{node=\"7\"} 4\n";
  EXPECT_EQ(ToPrometheusText(registry), expected);
}

TEST(TelemetryTest, PrometheusEscapesLabelsAndSanitizesNames) {
  MetricsRegistry registry;
  registry.GetCounter("predicate/has\"quote\\slash/stored_tuples")
      .Increment(1);
  std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("mpqe_predicate_stored_tuples{predicate="
                      "\"has\\\"quote\\\\slash\"} 1"),
            std::string::npos)
      << text;
}

TEST(TelemetryTest, PrometheusGoldenEscapedLabelValue) {
  // Pinned, byte-for-byte: a label value holding every character the
  // text format 0.0.4 requires escaping in quoted label values —
  // double quote, backslash, line feed — must come out as \",
  // \\ and \n, and the HELP line (which quotes the raw registry
  // path) must escape backslash and line feed too.
  MetricsRegistry registry;
  registry.GetCounter(std::string("predicate/a\"b\\c\nd/stored_tuples"))
      .Increment(3);
  const std::string expected =
      "# HELP mpqe_predicate_stored_tuples counter from registry path "
      "'predicate/a\"b\\\\c\\nd/stored_tuples'\n"
      "# TYPE mpqe_predicate_stored_tuples counter\n"
      "mpqe_predicate_stored_tuples{predicate=\"a\\\"b\\\\c\\nd\"} 3\n";
  EXPECT_EQ(ToPrometheusText(registry), expected);
}

// ---------------------------------------------------------------------------
// EngineTelemetry

TEST(TelemetryTest, QueryIdsAreMintedSequentially) {
  EngineTelemetry telemetry;
  EXPECT_EQ(telemetry.MintQueryId(), 1u);
  EXPECT_EQ(telemetry.MintQueryId(), 2u);
  EXPECT_EQ(telemetry.MintQueryId(), 3u);
}

TEST(TelemetryTest, QueryLogRingRetainsNewestAndCountsAll) {
  TelemetryOptions options;
  options.query_log_capacity = 3;
  EngineTelemetry telemetry(options);
  for (uint64_t i = 1; i <= 5; ++i) {
    QueryLogEntry entry;
    entry.query_id = i;
    entry.wall_ns = i * 1000;
    telemetry.OnSessionComplete(std::move(entry), nullptr);
  }
  EXPECT_EQ(telemetry.completed_queries(), 5u);
  auto log = telemetry.QueryLog();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].query_id, 3u);
  EXPECT_EQ(log[2].query_id, 5u);
}

TEST(TelemetryTest, SlowQueryThresholdFlagsAndCounts) {
  TelemetryOptions options;
  options.slow_query_ns = 1000;
  EngineTelemetry telemetry(options);
  QueryLogEntry fast;
  fast.query_id = 1;
  fast.wall_ns = 999;
  telemetry.OnSessionComplete(std::move(fast), nullptr);
  QueryLogEntry slow;
  slow.query_id = 2;
  slow.wall_ns = 5000;
  telemetry.OnSessionComplete(std::move(slow), nullptr);
  EXPECT_EQ(telemetry.slow_queries(), 1u);
  auto log = telemetry.QueryLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_FALSE(log[0].slow);
  EXPECT_TRUE(log[1].slow);
}

TEST(TelemetryTest, ConcurrentSessionCompletionsAndGaugeSampling) {
  // OnSessionStart/Complete from many threads racing SampleNow and
  // ReportQueueDepths — the TSan case for every telemetry entry point.
  EngineTelemetry telemetry;
  telemetry.StartSampling([](MetricsRegistry& r) {
    r.GetGauge("engine/workers").Set(4.0);
  });
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        telemetry.OnSessionStart();
        telemetry.SampleNow();
        const uint64_t query_id = telemetry.MintQueryId();
        telemetry.ReportQueueDepths(query_id, {{0, static_cast<uint64_t>(i)}},
                                    static_cast<uint64_t>(i));
        MetricsRegistry session;
        session.GetCounter("msg/delivered").Increment(1);
        QueryLogEntry entry;
        entry.query_id = query_id;
        entry.wall_ns = static_cast<uint64_t>(t * 1000 + i);
        telemetry.OnSessionComplete(std::move(entry), &session);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(telemetry.completed_queries(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(telemetry.registry().GetCounter("msg/delivered").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(
      telemetry.registry().GetGauge("engine/active_sessions").value(), 0.0);
  // Every stalled session completed, so no stall contribution remains.
  EXPECT_DOUBLE_EQ(
      telemetry.registry().GetGauge("engine/in_flight_messages").value(), 0.0);
  EXPECT_DOUBLE_EQ(
      telemetry.registry().GetGauge("scc/0/queue_depth").value(), 0.0);
}

TEST(TelemetryTest, ConcurrentStallsComposeAndClearPerQuery) {
  // Two sessions stalled at once: gauges are the sum of both, and a
  // fast session completing clears only ITS contribution instead of
  // clobbering the other session's live heartbeat.
  EngineTelemetry telemetry;
  MetricsRegistry& registry = telemetry.registry();
  telemetry.ReportQueueDepths(1, {{7, 10}}, 10);
  telemetry.ReportQueueDepths(2, {{7, 5}, {9, 3}}, 8);
  EXPECT_DOUBLE_EQ(registry.GetGauge("scc/7/queue_depth").value(), 15.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("scc/9/queue_depth").value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("engine/in_flight_messages").value(),
                   18.0);

  QueryLogEntry done;
  done.query_id = 1;
  telemetry.OnSessionComplete(std::move(done), nullptr);
  EXPECT_DOUBLE_EQ(registry.GetGauge("scc/7/queue_depth").value(), 5.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("scc/9/queue_depth").value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("engine/in_flight_messages").value(),
                   8.0);

  // Query 2 recovering (empty heartbeat) zeroes what it published
  // rather than pinning a stale snapshot.
  telemetry.ReportQueueDepths(2, {}, 0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("scc/7/queue_depth").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("scc/9/queue_depth").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("engine/in_flight_messages").value(),
                   0.0);
}

TEST(TelemetryTest, QueueWaitAggregatesFromSessionRegistry) {
  // The query-log queue_wait_ns breakdown sums the profiler's per-node
  // aggregated counters when the session collected them.
  EngineTelemetry telemetry;
  MetricsRegistry session;
  session.GetCounter("aggregated/node/0/queue_wait_ns").Increment(100);
  session.GetCounter("aggregated/node/3/queue_wait_ns").Increment(250);
  session.GetCounter("aggregated/node/0/fire_ns").Increment(999);  // ignored
  QueryLogEntry entry;
  entry.query_id = 1;
  telemetry.OnSessionComplete(std::move(entry), &session);
  auto log = telemetry.QueryLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].queue_wait_ns, 350u);
}

// ---------------------------------------------------------------------------
// Engine integration

TEST(TelemetryTest, SessionsAggregateIntoEngineRegistryAndQueryLog) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 4;
  // Full fidelity: every session collects and merges deep metrics.
  engine_options.telemetry_options.session_metrics_every = 1;
  Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();

  constexpr int kSessions = 8;
  std::vector<std::future<StatusOr<EvaluationResult>>> futures;
  for (int i = 0; i < kSessions; ++i) {
    futures.push_back(engine.RunAsync(*plan));
  }
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status();
  }

  ASSERT_NE(engine.telemetry(), nullptr);
  EngineTelemetry& telemetry = *engine.telemetry();
  EXPECT_EQ(telemetry.completed_queries(), static_cast<uint64_t>(kSessions));
  // Deep per-message metrics merged from every session.
  EXPECT_GT(telemetry.registry().GetCounter("msg/delivered").value(), 0u);
  EXPECT_GT(telemetry.registry().GetCounter("node/fires").value(), 0u);
  EXPECT_EQ(
      telemetry.registry().GetHistogram("engine/session_latency_ns").count(),
      static_cast<uint64_t>(kSessions));

  // Query log: one entry per session, ids unique and nonzero, all ok,
  // all against the same (reused after the first) plan.
  auto log = telemetry.QueryLog();
  ASSERT_EQ(log.size(), static_cast<size_t>(kSessions));
  std::vector<uint64_t> ids;
  int reused = 0;
  for (const auto& entry : log) {
    EXPECT_GE(entry.query_id, 1u);
    ids.push_back(entry.query_id);
    EXPECT_EQ(entry.status, "ok");
    EXPECT_EQ(entry.rows_out, 4u);  // tc(1, W) over the 5-edge cycle
    EXPECT_EQ(entry.text_hash, HashQueryText((*plan)->canonical_text()));
    if (entry.plan_reused) ++reused;
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(reused, kSessions - 1);  // every session after the plan's first
}

TEST(TelemetryTest, EngineDestructionWithPendingAsyncSessions) {
  // ~Engine must drain and join the pool BEFORE destroying telemetry:
  // queued RunAsync sessions hold the raw EngineTelemetry* stamped at
  // CreateSession and report into it when they (still) run during
  // shutdown. ASan/TSan turn a wrong teardown order into a failure.
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  std::vector<std::future<StatusOr<EvaluationResult>>> futures;
  {
    EngineOptions engine_options;
    engine_options.workers = 2;
    engine_options.telemetry_options.session_metrics_every = 1;
    Engine engine(engine_options);
    auto snapshot = engine.Attach(std::move(facts->database));
    auto plan = engine.Prepare(snapshot, kTcRules);
    ASSERT_TRUE(plan.ok()) << plan.status();
    for (int i = 0; i < 16; ++i) futures.push_back(engine.RunAsync(*plan));
    // Engine destroyed here with most sessions still queued.
  }
  for (auto& future : futures) {
    auto result = future.get();
    EXPECT_TRUE(result.ok()) << result.status();
  }
}

TEST(TelemetryTest, SamplingEveryZeroSkipsDeepMetricsButLogsQueries) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.telemetry_options.session_metrics_every = 0;
  Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto result = engine.RunAsync(*plan).get();
  ASSERT_TRUE(result.ok()) << result.status();

  EngineTelemetry& telemetry = *engine.telemetry();
  EXPECT_EQ(telemetry.completed_queries(), 1u);
  // Pre-registered at zero, never merged into.
  EXPECT_EQ(telemetry.registry().GetCounter("msg/delivered").value(), 0u);
}

TEST(TelemetryTest, PlanCacheCountersSurfaceInTelemetry) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.plan_cache_capacity = 1;
  Engine engine(engine_options);
  auto snapshot = engine.Attach(std::move(facts->database));

  ASSERT_TRUE(engine.Prepare(snapshot, kTcRules).ok());       // miss
  ASSERT_TRUE(engine.Prepare(snapshot, kTcRules).ok());       // hit
  const std::string other =
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "?- tc(2, W).";
  ASSERT_TRUE(engine.Prepare(snapshot, other).ok());  // miss + eviction

  MetricsRegistry& registry = engine.telemetry()->registry();
  EXPECT_EQ(registry.GetCounter("plan_cache/hit").value(), 1u);
  EXPECT_EQ(registry.GetCounter("plan_cache/miss").value(), 2u);
  EXPECT_EQ(registry.GetCounter("plan_cache/evictions").value(), 1u);
  EXPECT_EQ(registry.GetHistogram("engine/prepare_ns").count(), 3u);
}

TEST(TelemetryTest, TelemetryOffEngineHasNoTelemetryOrServer) {
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.telemetry = false;
  Engine engine(engine_options);
  EXPECT_EQ(engine.telemetry(), nullptr);
  EXPECT_EQ(engine.stats_port(), -1);
}

TEST(TelemetryTest, StatsPortRequiresTelemetry) {
  EngineOptions engine_options;
  engine_options.telemetry = false;
  engine_options.stats_port = 0;
  EXPECT_FALSE(engine_options.Validate().ok());
}

// ---------------------------------------------------------------------------
// Stats endpoint

TEST(TelemetryTest, StatsServerServesMetricsQueriesAndHealth) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.stats_port = 0;  // ephemeral
  engine_options.telemetry_options.session_metrics_every = 1;
  Engine engine(engine_options);
  ASSERT_TRUE(engine.stats_server_status().ok())
      << engine.stats_server_status();
  ASSERT_GT(engine.stats_port(), 0);

  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(engine.RunAsync(*plan).get().ok());

  std::string health = HttpGet(engine.stats_port(), "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_EQ(Body(health), "ok\n");

  std::string metrics = HttpGet(engine.stats_port(), "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find(PrometheusContentType()), std::string::npos);
  std::string body = Body(metrics);
  EXPECT_NE(body.find("mpqe_plan_cache_hit"), std::string::npos);
  EXPECT_NE(body.find("mpqe_engine_session_latency_ns_count 1"),
            std::string::npos);
  EXPECT_NE(body.find("mpqe_msg_delivered"), std::string::npos);

  std::string queries = HttpGet(engine.stats_port(), "/queries");
  EXPECT_NE(queries.find("mpqe-querylog-v1"), std::string::npos);
  EXPECT_NE(queries.find("\"query_id\": 1"), std::string::npos);

  std::string missing = HttpGet(engine.stats_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

TEST(TelemetryTest, ScrapesConcurrentWithSessions) {
  // The live-scrape claim: GET /metrics while sessions run, no torn
  // output and every scrape parses. Run under TSan in CI.
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 4;
  engine_options.stats_port = 0;
  engine_options.telemetry_options.session_metrics_every = 1;
  Engine engine(engine_options);
  ASSERT_TRUE(engine.stats_server_status().ok());
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      std::string body = Body(HttpGet(engine.stats_port(), "/metrics"));
      if (!body.empty()) {
        EXPECT_NE(body.find("# TYPE mpqe_plan_cache_hit counter"),
                  std::string::npos);
      }
    }
  });
  std::vector<std::future<StatusOr<EvaluationResult>>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(engine.RunAsync(*plan));
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().ok());
  }
  stop.store(true);
  scraper.join();
  EXPECT_EQ(engine.telemetry()->completed_queries(), 12u);
}

TEST(TelemetryTest, SilentClientDoesNotWedgeServerOrStop) {
  StatsServerOptions options;
  options.io_timeout_ms = 100;
  StatsServer server{options};
  server.AddRoute("/x", "text/plain", [] { return std::string("x"); });
  ASSERT_TRUE(server.Start().ok());

  // Connect and send nothing: the recv timeout must release the
  // single-threaded acceptor so the next scrape still gets served and
  // Stop() does not hang joining a recv-blocked acceptor.
  int idle = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(idle, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(idle, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::string response = HttpGet(server.port(), "/x");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_EQ(Body(response), "x");

  ::close(idle);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryTest, StatsServerMethodNotAllowedAndNotFound) {
  StatsServer server{StatsServerOptions{}};
  server.AddRoute("/x", "text/plain", [] { return std::string("x"); });
  ASSERT_TRUE(server.Start().ok());

  // Non-GET on a real route: 405 with the mandatory Allow header
  // (RFC 9110 §15.5.6), not a 404 and not a served body.
  std::string post =
      HttpRaw(server.port(), "POST /x HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos) << post;
  EXPECT_NE(post.find("Allow: GET, HEAD"), std::string::npos) << post;
  std::string put = HttpRaw(server.port(), "PUT /x HTTP/1.0\r\n\r\n");
  EXPECT_NE(put.find("405"), std::string::npos);
  EXPECT_NE(put.find("Allow: GET, HEAD"), std::string::npos);

  // Unknown path: 404 listing the routes that do exist.
  std::string missing = HttpGet(server.port(), "/unknown");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
  EXPECT_NE(Body(missing).find("/x"), std::string::npos);

  // Garbage request line: 400, and the server keeps serving.
  std::string bad = HttpRaw(server.port(), "nonsense\r\n\r\n");
  EXPECT_NE(bad.find("400"), std::string::npos);
  std::string ok = HttpGet(server.port(), "/x");
  EXPECT_NE(ok.find("200"), std::string::npos);
  EXPECT_EQ(Body(ok), "x");

  server.Stop();
}

TEST(TelemetryTest, StatsServerStopWhileRequestsInFlight) {
  // Stop() must join cleanly while a handler is mid-request and other
  // clients are still connecting: no hang, no crash, no serve-after-
  // stop. The handler stalls long enough that Stop() lands while the
  // acceptor is inside ServeConnection. Run under TSan in CI.
  StatsServerOptions options;
  options.io_timeout_ms = 200;
  StatsServer server{options};
  server.AddRoute("/slow", "text/plain", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::string("slow\n");
  });
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        std::string response = HttpGet(port, "/slow");
        // Served fully or refused — never a torn 200.
        if (response.find("200") != std::string::npos) {
          EXPECT_EQ(Body(response), "slow\n");
        }
      }
    });
  }
  // Let requests get in flight, then stop the server under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  server.Stop();
  EXPECT_FALSE(server.running());
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(HttpGet(port, "/slow"), "");
}

TEST(TelemetryTest, StatsServerRejectsBadPortAndStops) {
  StatsServer first{StatsServerOptions{}};
  first.AddRoute("/x", "text/plain", [] { return std::string("x"); });
  ASSERT_TRUE(first.Start().ok());
  ASSERT_GT(first.port(), 0);

  // Second server on the same fixed port must fail cleanly.
  StatsServerOptions clash_options;
  clash_options.port = first.port();
  StatsServer clash{clash_options};
  clash.AddRoute("/x", "text/plain", [] { return std::string("x"); });
  Status status = clash.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);

  first.Stop();
  EXPECT_FALSE(first.running());
  // After Stop the port no longer answers.
  EXPECT_EQ(HttpGet(first.port(), "/x"), "");
}

}  // namespace
}  // namespace mpqe
