// Storage-layer tests for the flat tuple arena behind Relation:
//
//  * arena growth and dedup/index rehashes keep row positions, Probe
//    results and insertion-order iteration stable across interleaved
//    Insert/EnsureIndex/Probe sequences;
//  * model-based property test: duplicate elimination, Contains,
//    equality and SortedTuples match a reference implementation built
//    on plain std::vector<Tuple>/std::set<Tuple>.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "relational/relation.h"

namespace mpqe {
namespace {

Tuple T2(int64_t a, int64_t b) { return {Value::Int(a), Value::Int(b)}; }

// Reference semantics: insertion-ordered, duplicate-free tuple list.
class ReferenceRelation {
 public:
  explicit ReferenceRelation(size_t arity) : arity_(arity) {}

  bool Insert(const Tuple& t) {
    if (!seen_.insert(t).second) return false;
    rows_.push_back(t);
    return true;
  }

  bool Contains(const Tuple& t) const { return seen_.count(t) != 0; }
  size_t size() const { return rows_.size(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t arity() const { return arity_; }

  std::vector<Tuple> SortedTuples() const {
    std::vector<Tuple> out = rows_;
    std::sort(out.begin(), out.end());
    return out;
  }

  // Positions whose tuples agree with `key` on `columns`.
  std::vector<size_t> Matches(const std::vector<size_t>& columns,
                              const Tuple& key) const {
    std::vector<size_t> out;
    for (size_t pos = 0; pos < rows_.size(); ++pos) {
      bool ok = true;
      for (size_t i = 0; i < columns.size(); ++i) {
        if (rows_[pos][columns[i]] != key[i]) ok = false;
      }
      if (ok) out.push_back(pos);
    }
    return out;
  }

 private:
  size_t arity_;
  std::vector<Tuple> rows_;
  std::set<Tuple> seen_;
};

TEST(RelationStorageTest, InsertionOrderSurvivesArenaGrowth) {
  // Far past several capacity doublings of the dedup table and arena.
  Relation r(2);
  std::vector<Tuple> expected;
  for (int64_t i = 0; i < 5000; ++i) {
    Tuple t = T2(i % 97, i);
    if (r.Insert(t)) expected.push_back(t);
    // Duplicate re-insert of an early row must stay rejected.
    EXPECT_FALSE(r.Insert(T2(0, 0)));
  }
  ASSERT_EQ(r.size(), expected.size());
  size_t pos = 0;
  for (TupleRef t : r.tuples()) {
    EXPECT_EQ(t.ToTuple(), expected[pos]);
    EXPECT_EQ(r.tuple(pos), TupleRef(expected[pos]));
    ++pos;
  }
  EXPECT_EQ(pos, expected.size());
}

TEST(RelationStorageTest, ProbeStableAcrossInterleavedInsertAndRehash) {
  Relation r(2);
  ReferenceRelation ref(2);
  // Index created while the relation is still tiny; every later insert
  // must maintain it through dedup-table and index-table rehashes.
  size_t by_first = r.EnsureIndex({0});
  Rng rng(42);
  for (int round = 0; round < 2000; ++round) {
    Tuple t = T2(rng.Range(0, 30), rng.Range(0, 200));
    EXPECT_EQ(r.Insert(t), ref.Insert(t));
    if (round % 67 == 0) {
      // Re-request: must return the same handle, not rebuild.
      EXPECT_EQ(r.EnsureIndex({0}), by_first);
      int64_t probe_val = rng.Range(0, 30);
      Tuple key = {Value::Int(probe_val)};
      const std::vector<size_t>* hits = r.Probe(by_first, key);
      std::vector<size_t> got = hits ? *hits : std::vector<size_t>{};
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, ref.Matches({0}, key)) << "round " << round;
    }
  }
  // Final full sweep: every key, plus a second index created late must
  // agree with one created before any inserts.
  size_t by_second = r.EnsureIndex({1});
  for (int64_t v = 0; v < 31; ++v) {
    Tuple key = {Value::Int(v)};
    const std::vector<size_t>* hits = r.Probe(by_first, key);
    std::vector<size_t> got = hits ? *hits : std::vector<size_t>{};
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, ref.Matches({0}, key));
  }
  for (int64_t v = 0; v < 201; ++v) {
    Tuple key = {Value::Int(v)};
    const std::vector<size_t>* hits = r.Probe(by_second, key);
    std::vector<size_t> got = hits ? *hits : std::vector<size_t>{};
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, ref.Matches({1}, key));
  }
}

TEST(RelationStorageTest, ZeroArityRelationHoldsOneEmptyTuple) {
  Relation r(0);
  EXPECT_FALSE(r.Contains(Tuple{}));
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));  // the only possible duplicate
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple{}));
  size_t seen = 0;
  for (TupleRef t : r.tuples()) {
    EXPECT_EQ(t.size(), 0u);
    ++seen;
  }
  EXPECT_EQ(seen, 1u);
}

TEST(RelationStorageTest, EmptyKeyIndexReturnsAllRows) {
  Relation r(2);
  for (int64_t i = 0; i < 10; ++i) r.Insert(T2(i, i * i));
  size_t handle = r.EnsureIndex({});
  const std::vector<size_t>* hits = r.Probe(handle, Tuple{});
  ASSERT_NE(hits, nullptr);
  std::vector<size_t> got = *hits;
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i);
}

class RelationStorageProperty : public ::testing::TestWithParam<uint64_t> {};

// Randomized interleavings of Insert/EnsureIndex/Probe against the
// reference model: public semantics (dedup, order, Contains, equality,
// SortedTuples, Probe) must be indistinguishable from the old
// Tuple-set implementation.
TEST_P(RelationStorageProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  size_t arity = static_cast<size_t>(rng.Range(1, 3));
  Relation r(arity);
  ReferenceRelation ref(arity);
  std::map<std::vector<size_t>, size_t> handles;

  for (int step = 0; step < 1500; ++step) {
    int op = static_cast<int>(rng.Range(0, 9));
    if (op < 6) {  // Insert
      Tuple t;
      for (size_t j = 0; j < arity; ++j) {
        t.push_back(Value::Int(rng.Range(0, 8)));
      }
      EXPECT_EQ(r.Insert(t), ref.Insert(t));
    } else if (op < 7) {  // EnsureIndex over a random column subset
      std::vector<size_t> cols;
      for (size_t j = 0; j < arity; ++j) {
        if (rng.Range(0, 1) == 0) cols.push_back(j);
      }
      size_t handle = r.EnsureIndex(cols);
      auto [it, inserted] = handles.emplace(cols, handle);
      if (!inserted) {
        EXPECT_EQ(handle, it->second);
      }
    } else if (op < 8) {  // Probe a previously created index
      if (handles.empty()) continue;
      auto it = handles.begin();
      std::advance(it, rng.Range(0, static_cast<int64_t>(handles.size()) - 1));
      const std::vector<size_t>& cols = it->first;
      Tuple key;
      for (size_t j = 0; j < cols.size(); ++j) {
        key.push_back(Value::Int(rng.Range(0, 8)));
      }
      const std::vector<size_t>* hits = r.Probe(it->second, key);
      std::vector<size_t> got = hits ? *hits : std::vector<size_t>{};
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, ref.Matches(cols, key)) << "step " << step;
    } else {  // Contains on a random (often absent) tuple
      Tuple t;
      for (size_t j = 0; j < arity; ++j) {
        t.push_back(Value::Int(rng.Range(0, 10)));
      }
      EXPECT_EQ(r.Contains(t), ref.Contains(t));
    }
  }

  // Whole-relation invariants.
  ASSERT_EQ(r.size(), ref.size());
  size_t pos = 0;
  for (TupleRef t : r.tuples()) {
    EXPECT_EQ(t.ToTuple(), ref.rows()[pos]);
    ++pos;
  }
  EXPECT_EQ(r.SortedTuples(), ref.SortedTuples());

  // Equality: rebuilding in a different insertion order (with
  // duplicates sprinkled in) compares equal; dropping a row does not.
  Relation shuffled(arity);
  std::vector<Tuple> rows = ref.rows();
  for (size_t i = rows.size(); i > 0; --i) {
    shuffled.Insert(rows[i - 1]);
    shuffled.Insert(rows[rows.size() - 1]);  // duplicate on purpose
  }
  EXPECT_TRUE(r == shuffled);
  if (!rows.empty()) {
    Relation truncated(arity);
    for (size_t i = 0; i + 1 < rows.size(); ++i) truncated.Insert(rows[i]);
    EXPECT_FALSE(r == truncated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationStorageProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

}  // namespace
}  // namespace mpqe
