// Storage-layer tests for the flat tuple arena behind Relation:
//
//  * arena growth and dedup/index rehashes keep row positions, Probe
//    results and insertion-order iteration stable across interleaved
//    Insert/EnsureIndex/Probe sequences;
//  * model-based property test: duplicate elimination, Contains,
//    equality and SortedTuples match a reference implementation built
//    on plain std::vector<Tuple>/std::set<Tuple>.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "relational/relation.h"

namespace mpqe {
namespace {

Tuple T2(int64_t a, int64_t b) { return {Value::Int(a), Value::Int(b)}; }

// Reference semantics: insertion-ordered, duplicate-free tuple list.
class ReferenceRelation {
 public:
  explicit ReferenceRelation(size_t arity) : arity_(arity) {}

  bool Insert(const Tuple& t) {
    if (!seen_.insert(t).second) return false;
    rows_.push_back(t);
    return true;
  }

  bool Contains(const Tuple& t) const { return seen_.count(t) != 0; }
  size_t size() const { return rows_.size(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t arity() const { return arity_; }

  std::vector<Tuple> SortedTuples() const {
    std::vector<Tuple> out = rows_;
    std::sort(out.begin(), out.end());
    return out;
  }

  // Positions whose tuples agree with `key` on `columns`.
  std::vector<size_t> Matches(const std::vector<size_t>& columns,
                              const Tuple& key) const {
    std::vector<size_t> out;
    for (size_t pos = 0; pos < rows_.size(); ++pos) {
      bool ok = true;
      for (size_t i = 0; i < columns.size(); ++i) {
        if (rows_[pos][columns[i]] != key[i]) ok = false;
      }
      if (ok) out.push_back(pos);
    }
    return out;
  }

 private:
  size_t arity_;
  std::vector<Tuple> rows_;
  std::set<Tuple> seen_;
};

TEST(RelationStorageTest, InsertionOrderSurvivesArenaGrowth) {
  // Far past several capacity doublings of the dedup table and arena.
  Relation r(2);
  std::vector<Tuple> expected;
  for (int64_t i = 0; i < 5000; ++i) {
    Tuple t = T2(i % 97, i);
    if (r.Insert(t)) expected.push_back(t);
    // Duplicate re-insert of an early row must stay rejected.
    EXPECT_FALSE(r.Insert(T2(0, 0)));
  }
  ASSERT_EQ(r.size(), expected.size());
  size_t pos = 0;
  for (TupleRef t : r.tuples()) {
    EXPECT_EQ(t.ToTuple(), expected[pos]);
    EXPECT_EQ(r.tuple(pos), TupleRef(expected[pos]));
    ++pos;
  }
  EXPECT_EQ(pos, expected.size());
}

TEST(RelationStorageTest, ProbeStableAcrossInterleavedInsertAndRehash) {
  Relation r(2);
  ReferenceRelation ref(2);
  // Index created while the relation is still tiny; every later insert
  // must maintain it through dedup-table and index-table rehashes.
  size_t by_first = r.EnsureIndex({0});
  Rng rng(42);
  for (int round = 0; round < 2000; ++round) {
    Tuple t = T2(rng.Range(0, 30), rng.Range(0, 200));
    EXPECT_EQ(r.Insert(t), ref.Insert(t));
    if (round % 67 == 0) {
      // Re-request: must return the same handle, not rebuild.
      EXPECT_EQ(r.EnsureIndex({0}), by_first);
      int64_t probe_val = rng.Range(0, 30);
      Tuple key = {Value::Int(probe_val)};
      const std::vector<size_t>* hits = r.Probe(by_first, key);
      std::vector<size_t> got = hits ? *hits : std::vector<size_t>{};
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, ref.Matches({0}, key)) << "round " << round;
    }
  }
  // Final full sweep: every key, plus a second index created late must
  // agree with one created before any inserts.
  size_t by_second = r.EnsureIndex({1});
  for (int64_t v = 0; v < 31; ++v) {
    Tuple key = {Value::Int(v)};
    const std::vector<size_t>* hits = r.Probe(by_first, key);
    std::vector<size_t> got = hits ? *hits : std::vector<size_t>{};
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, ref.Matches({0}, key));
  }
  for (int64_t v = 0; v < 201; ++v) {
    Tuple key = {Value::Int(v)};
    const std::vector<size_t>* hits = r.Probe(by_second, key);
    std::vector<size_t> got = hits ? *hits : std::vector<size_t>{};
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, ref.Matches({1}, key));
  }
}

TEST(RelationStorageTest, ZeroArityRelationHoldsOneEmptyTuple) {
  Relation r(0);
  EXPECT_FALSE(r.Contains(Tuple{}));
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));  // the only possible duplicate
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple{}));
  size_t seen = 0;
  for (TupleRef t : r.tuples()) {
    EXPECT_EQ(t.size(), 0u);
    ++seen;
  }
  EXPECT_EQ(seen, 1u);
}

TEST(RelationStorageTest, EmptyKeyIndexReturnsAllRows) {
  Relation r(2);
  for (int64_t i = 0; i < 10; ++i) r.Insert(T2(i, i * i));
  size_t handle = r.EnsureIndex({});
  const std::vector<size_t>* hits = r.Probe(handle, Tuple{});
  ASSERT_NE(hits, nullptr);
  std::vector<size_t> got = *hits;
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i);
}

class RelationStorageProperty : public ::testing::TestWithParam<uint64_t> {};

// Randomized interleavings of Insert/EnsureIndex/Probe against the
// reference model: public semantics (dedup, order, Contains, equality,
// SortedTuples, Probe) must be indistinguishable from the old
// Tuple-set implementation.
TEST_P(RelationStorageProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  size_t arity = static_cast<size_t>(rng.Range(1, 3));
  Relation r(arity);
  ReferenceRelation ref(arity);
  std::map<std::vector<size_t>, size_t> handles;

  for (int step = 0; step < 1500; ++step) {
    int op = static_cast<int>(rng.Range(0, 9));
    if (op < 6) {  // Insert
      Tuple t;
      for (size_t j = 0; j < arity; ++j) {
        t.push_back(Value::Int(rng.Range(0, 8)));
      }
      EXPECT_EQ(r.Insert(t), ref.Insert(t));
    } else if (op < 7) {  // EnsureIndex over a random column subset
      std::vector<size_t> cols;
      for (size_t j = 0; j < arity; ++j) {
        if (rng.Range(0, 1) == 0) cols.push_back(j);
      }
      size_t handle = r.EnsureIndex(cols);
      auto [it, inserted] = handles.emplace(cols, handle);
      if (!inserted) {
        EXPECT_EQ(handle, it->second);
      }
    } else if (op < 8) {  // Probe a previously created index
      if (handles.empty()) continue;
      auto it = handles.begin();
      std::advance(it, rng.Range(0, static_cast<int64_t>(handles.size()) - 1));
      const std::vector<size_t>& cols = it->first;
      Tuple key;
      for (size_t j = 0; j < cols.size(); ++j) {
        key.push_back(Value::Int(rng.Range(0, 8)));
      }
      const std::vector<size_t>* hits = r.Probe(it->second, key);
      std::vector<size_t> got = hits ? *hits : std::vector<size_t>{};
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, ref.Matches(cols, key)) << "step " << step;
    } else {  // Contains on a random (often absent) tuple
      Tuple t;
      for (size_t j = 0; j < arity; ++j) {
        t.push_back(Value::Int(rng.Range(0, 10)));
      }
      EXPECT_EQ(r.Contains(t), ref.Contains(t));
    }
  }

  // Whole-relation invariants.
  ASSERT_EQ(r.size(), ref.size());
  size_t pos = 0;
  for (TupleRef t : r.tuples()) {
    EXPECT_EQ(t.ToTuple(), ref.rows()[pos]);
    ++pos;
  }
  EXPECT_EQ(r.SortedTuples(), ref.SortedTuples());

  // Equality: rebuilding in a different insertion order (with
  // duplicates sprinkled in) compares equal; dropping a row does not.
  Relation shuffled(arity);
  std::vector<Tuple> rows = ref.rows();
  for (size_t i = rows.size(); i > 0; --i) {
    shuffled.Insert(rows[i - 1]);
    shuffled.Insert(rows[rows.size() - 1]);  // duplicate on purpose
  }
  EXPECT_TRUE(r == shuffled);
  if (!rows.empty()) {
    Relation truncated(arity);
    for (size_t i = 0; i + 1 < rows.size(); ++i) truncated.Insert(rows[i]);
    EXPECT_FALSE(r == truncated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationStorageProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

// ---------------------------------------------------------------------------
// Batch kernels (InsertSegment / ProbeBlock) against the row-at-a-time
// primitives they vectorize.

// Local stand-in for msg's TupleSegment: relational/ is layered below
// msg/, so InsertSegment/ProbeSegment are templated on the shape
// (fields arity / num_rows / contiguous row-major values).
struct TestSegment {
  size_t arity = 0;
  size_t num_rows = 0;
  std::vector<Value> values;

  void Append(const Tuple& t) {
    values.insert(values.end(), t.begin(), t.end());
    ++num_rows;
  }
  TupleRef row(size_t r) const {
    return TupleRef(values.data() + r * arity, arity);
  }
};

class BatchKernelProperty : public ::testing::TestWithParam<uint64_t> {};

// InsertSegment must be observationally identical to an InsertRow
// loop: same per-row accept/reject verdicts, same row ids in segment
// order (the lineage-batching contract), same final arena. Segments
// cover the full mix — random rows with frequent duplicates,
// wholesale all-duplicate re-derivations, empty segments, and the
// arity-0 edge case.
TEST_P(BatchKernelProperty, InsertSegmentMatchesInsertRow) {
  Rng rng(GetParam());
  const size_t arity = static_cast<size_t>(rng.Range(0, 2));
  Relation batch(arity);
  Relation serial(arity);
  std::vector<TestSegment> history;
  for (int s = 0; s < 40; ++s) {
    TestSegment seg;
    seg.arity = arity;
    if (s % 9 == 8 && !history.empty()) {
      // Wholesale re-derivation: an earlier segment arrives again.
      seg = history[static_cast<size_t>(
          rng.Range(0, static_cast<int64_t>(history.size()) - 1))];
    } else if (s % 9 != 7) {  // every ninth-ish segment stays empty
      const int64_t rows = rng.Range(1, 96);
      for (int64_t i = 0; i < rows; ++i) {
        Tuple t;
        for (size_t j = 0; j < arity; ++j) {
          t.push_back(Value::Int(rng.Range(0, 40)));
        }
        seg.Append(t);
      }
    }
    history.push_back(seg);

    const BatchInsertResult& res = batch.InsertSegment(seg);
    ASSERT_EQ(res.num_rows, seg.num_rows);
    ASSERT_EQ(res.rows.size(), seg.num_rows);
    size_t inserted = 0;
    for (size_t r = 0; r < seg.num_rows; ++r) {
      Relation::InsertResult ins = serial.InsertRow(seg.row(r));
      EXPECT_EQ(res.inserted(r), ins.inserted) << "segment " << s
                                               << " row " << r;
      EXPECT_EQ(res.rows[r], ins.row) << "segment " << s << " row " << r;
      if (ins.inserted) ++inserted;
    }
    EXPECT_EQ(res.num_inserted, inserted);
    ASSERT_EQ(batch.size(), serial.size());
  }
  EXPECT_TRUE(batch == serial);
  for (size_t pos = 0; pos < batch.size(); ++pos) {
    EXPECT_EQ(batch.tuple(pos).ToTuple(), serial.tuple(pos).ToTuple());
  }
}

// ProbeBlock must partition its positions output exactly as per-key
// Probe calls would answer, including missing keys (empty ranges) and
// a not-yet-populated index.
TEST_P(BatchKernelProperty, ProbeBlockMatchesProbe) {
  Rng rng(GetParam() + 1000);
  Relation r(2);
  const size_t idx = r.EnsureIndex({0});

  std::vector<size_t> offsets;
  std::vector<size_t> positions;
  // Empty relation: every key must come back with an empty range.
  {
    std::vector<Value> keys{Value::Int(1), Value::Int(2)};
    r.ProbeBlock(idx, keys.data(), keys.size(), offsets, positions);
    ASSERT_EQ(offsets.size(), keys.size() + 1);
    EXPECT_TRUE(positions.empty());
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(offsets[i], offsets[i + 1]);
    }
  }

  const int64_t rows = rng.Range(50, 800);
  for (int64_t i = 0; i < rows; ++i) {
    r.Insert(T2(rng.Range(0, 30), rng.Range(0, 100)));
  }
  // Key block mixing present and absent keys.
  const size_t num_keys = 200;
  std::vector<Value> keys;
  keys.reserve(num_keys);
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back(Value::Int(rng.Range(0, 40)));
  }
  positions.clear();
  r.ProbeBlock(idx, keys.data(), num_keys, offsets, positions);
  ASSERT_EQ(offsets.size(), num_keys + 1);
  for (size_t i = 0; i < num_keys; ++i) {
    Tuple key{keys[i]};
    const std::vector<size_t>* hits = r.Probe(idx, key);
    std::vector<size_t> expected = hits ? *hits : std::vector<size_t>{};
    ASSERT_LE(offsets[i], offsets[i + 1]);
    ASSERT_LE(offsets[i + 1], positions.size());
    std::vector<size_t> got(positions.begin() + offsets[i],
                            positions.begin() + offsets[i + 1]);
    EXPECT_EQ(got, expected) << "key " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchKernelProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

TEST(RelationStorageTest, ClearKeepsBatchScaffoldingUsable) {
  // Clear drops rows but keeps capacity, dedup slots, and index
  // registrations — the reusable-scratch idiom batch consumers
  // (EdbProcess request dedup) rely on between requests.
  Relation r(2);
  const size_t idx = r.EnsureIndex({0});
  TestSegment seg;
  seg.arity = 2;
  for (int64_t i = 0; i < 300; ++i) seg.Append(T2(i % 10, i));
  ASSERT_EQ(r.InsertSegment(seg).num_inserted, 300u);
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.Contains(T2(0, 0)));
  const std::vector<size_t>* hits = r.Probe(idx, Tuple{Value::Int(0)});
  EXPECT_TRUE(hits == nullptr || hits->empty());
  // Re-absorbing the same segment after Clear must accept every row
  // again and keep dedup exact within the new epoch.
  const BatchInsertResult& res = r.InsertSegment(seg);
  EXPECT_EQ(res.num_inserted, 300u);
  EXPECT_EQ(r.InsertSegment(seg).num_inserted, 0u);
  EXPECT_EQ(r.size(), 300u);
  hits = r.Probe(idx, Tuple{Value::Int(3)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 30u);
}

}  // namespace
}  // namespace mpqe
