// Tests for hypergraphs, GYO reduction, qual trees, monotone flow, and
// qual tree composition — including the paper's Example 4.1 rules
// R1/R2/R3 (Figs. 3 and 4), Example 4.2, and Theorem 4.2 (Fig. 5).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "hypergraph/gyo.h"
#include "hypergraph/monotone_flow.h"

namespace mpqe {
namespace {

TEST(HypergraphTest, AddEdgeSortsAndDedups) {
  Hypergraph hg;
  size_t e = hg.AddEdge("a", {3, 1, 3, 2});
  EXPECT_EQ(hg.edge(e).vars, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(hg.edge(e).Contains(2));
  EXPECT_FALSE(hg.edge(e).Contains(9));
}

TEST(HypergraphTest, SubsetOf) {
  Hypergraph hg;
  size_t a = hg.AddEdge("a", {1, 2});
  size_t b = hg.AddEdge("b", {1, 2, 3});
  EXPECT_TRUE(hg.edge(a).SubsetOf(hg.edge(b)));
  EXPECT_FALSE(hg.edge(b).SubsetOf(hg.edge(a)));
  EXPECT_TRUE(hg.edge(a).SubsetOf(hg.edge(a)));
}

TEST(GyoTest, SingleEdgeIsAcyclic) {
  Hypergraph hg;
  hg.AddEdge("a", {1, 2, 3});
  EXPECT_TRUE(IsAcyclic(hg));
}

TEST(GyoTest, EmptyEdgeIsAcyclic) {
  Hypergraph hg;
  hg.AddEdge("empty", {});
  hg.AddEdge("a", {1});
  EXPECT_TRUE(IsAcyclic(hg));
}

TEST(GyoTest, ChainIsAcyclic) {
  // a{1,2}, b{2,3}, c{3,4}: classic path, acyclic.
  Hypergraph hg;
  hg.AddEdge("a", {1, 2});
  hg.AddEdge("b", {2, 3});
  hg.AddEdge("c", {3, 4});
  GyoResult r = GyoReduce(hg);
  EXPECT_TRUE(r.acyclic);
  EXPECT_TRUE(HasQualTreeProperty(hg.edges(), r.qual_tree.adjacency));
}

TEST(GyoTest, TriangleIsCyclic) {
  // The classic cyclic hypergraph: pairwise edges over {1,2,3}.
  Hypergraph hg;
  hg.AddEdge("ab", {1, 2});
  hg.AddEdge("bc", {2, 3});
  hg.AddEdge("ca", {3, 1});
  GyoResult r = GyoReduce(hg);
  EXPECT_FALSE(r.acyclic);
  EXPECT_EQ(r.core.size(), 3u);
}

TEST(GyoTest, TriangleWithCoveringEdgeIsAcyclic) {
  // Adding the "big" edge {1,2,3} makes it alpha-acyclic.
  Hypergraph hg;
  hg.AddEdge("ab", {1, 2});
  hg.AddEdge("bc", {2, 3});
  hg.AddEdge("ca", {3, 1});
  hg.AddEdge("abc", {1, 2, 3});
  EXPECT_TRUE(IsAcyclic(hg));
}

TEST(GyoTest, DuplicateEdgesReduce) {
  Hypergraph hg;
  hg.AddEdge("a1", {1, 2});
  hg.AddEdge("a2", {1, 2});
  EXPECT_TRUE(IsAcyclic(hg));
}

TEST(GyoTest, QualTreeIsATree) {
  Hypergraph hg;
  hg.AddEdge("h", {1});
  hg.AddEdge("a", {1, 2, 3});
  hg.AddEdge("b", {2, 4});
  hg.AddEdge("c", {3, 5});
  GyoResult r = GyoReduce(hg);
  ASSERT_TRUE(r.acyclic);
  // n nodes, n-1 undirected edges.
  size_t degree_sum = 0;
  for (const auto& adj : r.qual_tree.adjacency) degree_sum += adj.size();
  EXPECT_EQ(degree_sum, 2 * (hg.edge_count() - 1));
  RootedQualTree rooted = RootQualTree(r.qual_tree, 0);
  EXPECT_EQ(rooted.preorder.size(), hg.edge_count());  // connected
}

TEST(GyoTest, RandomJoinTreesAreAcyclic) {
  // Property: hypergraphs generated from a random join tree satisfy
  // the running-intersection property by construction, so GYO must
  // report acyclic and its qual tree must satisfy the qual tree
  // property.
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    size_t n = 3 + rng.Below(8);
    int next_var = 0;
    std::vector<std::vector<int>> edge_vars(n);
    // Build a random tree; each node shares a connector variable with
    // its parent and adds private variables.
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) {
        size_t parent = rng.Below(i);
        int connector = next_var++;
        edge_vars[parent].push_back(connector);
        edge_vars[i].push_back(connector);
      }
      size_t privates = rng.Below(3);
      for (size_t k = 0; k < privates; ++k) edge_vars[i].push_back(next_var++);
    }
    Hypergraph hg;
    for (size_t i = 0; i < n; ++i) {
      hg.AddEdge(StrCat("e", i), edge_vars[i]);
    }
    GyoResult r = GyoReduce(hg);
    EXPECT_TRUE(r.acyclic) << "seed " << seed << ": " << hg.ToString();
    if (r.acyclic) {
      EXPECT_TRUE(HasQualTreeProperty(hg.edges(), r.qual_tree.adjacency))
          << "seed " << seed;
    }
  }
}

TEST(GyoTest, RandomCycleCoresAreCyclic) {
  // Property: a cycle of length >= 3 of pairwise-overlapping edges
  // (with no covering edge) is cyclic.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    int k = 3 + static_cast<int>(rng.Below(5));
    Hypergraph hg;
    for (int i = 0; i < k; ++i) {
      hg.AddEdge(StrCat("e", i), {i, (i + 1) % k});
    }
    EXPECT_FALSE(IsAcyclic(hg)) << "cycle length " << k;
  }
}

// --- The paper's Example 4.1 --------------------------------------------

// Binding: first argument of p is "d", second is "f".
Adornment HeadDf() {
  return {BindingClass::kDynamic, BindingClass::kFree};
}

TEST(MonotoneFlowTest, RuleR1HasMonotoneFlow) {
  // R1: p(X, Z) :- a(X, Y), b(Y, U), c(U, Z).
  auto unit = Parse("p(X, Z) :- a(X, Y), b(Y, U), c(U, Z).");
  ASSERT_TRUE(unit.ok());
  MonotoneFlowResult r =
      TestMonotoneFlow(unit->program.rules()[0], HeadDf(), unit->program);
  EXPECT_TRUE(r.has_monotone_flow);
}

TEST(MonotoneFlowTest, RuleR2HasMonotoneFlow) {
  // R2: p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  MonotoneFlowResult r =
      TestMonotoneFlow(unit->program.rules()[0], HeadDf(), unit->program);
  EXPECT_TRUE(r.has_monotone_flow) << r.evaluation.hypergraph.ToString();
}

TEST(MonotoneFlowTest, RuleR3LacksMonotoneFlow) {
  // R3: p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).
  // Fails "because of a cycle involving Y, V, and W" (Fig. 4).
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  MonotoneFlowResult r = TestMonotoneFlow(rule, HeadDf(), unit->program);
  EXPECT_FALSE(r.has_monotone_flow);
  // The irreducible core is exactly the a,b,c triangle on {Y,V,W}.
  ASSERT_EQ(r.gyo.core.size(), 3u);
  std::vector<std::string> labels;
  for (const auto& e : r.gyo.core) {
    labels.push_back(e.label);
    EXPECT_EQ(e.vars.size(), 2u);
  }
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MonotoneFlowTest, R3BecomesAcyclicWhenWDropped) {
  // Sanity check on the cycle diagnosis: removing W from c restores
  // monotone flow.
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  MonotoneFlowResult r =
      TestMonotoneFlow(unit->program.rules()[0], HeadDf(), unit->program);
  EXPECT_TRUE(r.has_monotone_flow);
}

TEST(MonotoneFlowTest, HeadBindingAffectsAcyclicity) {
  // p(X, Z) :- a(X, Y), b(Y, Z), c(Z, X).
  // With head fully free the evaluation hypergraph is the a-b-c
  // triangle (cyclic); adding the head edge with both X and Z bound
  // does not break the cycle either; but binding is irrelevant here —
  // verify both classifications give cyclic, and that a chain rule is
  // acyclic regardless.
  auto unit = Parse("p(X, Z) :- a(X, Y), b(Y, Z), c(Z, X).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  EXPECT_FALSE(TestMonotoneFlow(rule, HeadDf(), unit->program)
                   .has_monotone_flow);
  EXPECT_FALSE(
      TestMonotoneFlow(rule, {BindingClass::kFree, BindingClass::kFree},
                       unit->program)
          .has_monotone_flow);
}

TEST(MonotoneFlowTest, EvaluationHypergraphShape) {
  auto unit = Parse("p(X, Z) :- a(X, Y), b(Y, Z).");
  ASSERT_TRUE(unit.ok());
  EvaluationHypergraph eh = BuildEvaluationHypergraph(
      unit->program.rules()[0], HeadDf(), unit->program);
  ASSERT_EQ(eh.hypergraph.edge_count(), 3u);
  // Head edge contains only the bound head variable (X).
  EXPECT_EQ(eh.hypergraph.edge(eh.head_edge).vars.size(), 1u);
  EXPECT_EQ(eh.hypergraph.edge(eh.SubgoalEdge(0)).vars.size(), 2u);
  EXPECT_EQ(eh.hypergraph.edge(eh.head_edge).label, "p^b");
}

// --- Example 4.2: the qual tree for R2 ----------------------------------

TEST(QualTreeTest, R2QualTreeMatchesExample42) {
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  MonotoneFlowResult r =
      TestMonotoneFlow(unit->program.rules()[0], HeadDf(), unit->program);
  ASSERT_TRUE(r.has_monotone_flow);
  // Paper's tree: root p^b — a — {b, c}; e under b; d under c.
  // Edge indexing: 0=p^b, 1=a, 2=b, 3=c, 4=d, 5=e.
  RootedQualTree rooted = RootQualTree(r.gyo.qual_tree, r.evaluation.head_edge);
  EXPECT_EQ(rooted.parent[1], 0);  // a under p^b
  EXPECT_EQ(rooted.parent[2], 1);  // b under a
  EXPECT_EQ(rooted.parent[3], 1);  // c under a
  EXPECT_EQ(rooted.parent[4], 3);  // d under c
  EXPECT_EQ(rooted.parent[5], 2);  // e under b
}

// --- Theorem 4.2: qual tree composition (Fig. 5) -------------------------

TEST(QualTreeTest, ComposeFig5) {
  // Outer rule r :- s, p with qual tree  r^b — q — {s, p}; inner rule
  // p :- a, b with qual tree p^b — a — b. Composing on leaf p attaches
  // a (the neighbor of p^b) to q.
  Hypergraph outer;
  outer.AddEdge("r^b", {1});          // 0
  outer.AddEdge("q", {1, 2, 3});      // 1
  outer.AddEdge("s", {2});            // 2
  outer.AddEdge("p", {3});            // 3 (the resolved leaf)
  GyoResult outer_gyo = GyoReduce(outer);
  ASSERT_TRUE(outer_gyo.acyclic);

  Hypergraph inner;
  inner.AddEdge("p^b", {3});          // 0 (root)
  inner.AddEdge("a", {3, 4});         // 1
  inner.AddEdge("b", {4, 5});         // 2
  GyoResult inner_gyo = GyoReduce(inner);
  ASSERT_TRUE(inner_gyo.acyclic);

  auto composed = ComposeQualTrees(outer, outer_gyo.qual_tree, 0, 3, inner,
                                   inner_gyo.qual_tree, 0);
  ASSERT_TRUE(composed.ok());
  // 4 - 1 outer nodes + 3 - 1 inner nodes = 5.
  EXPECT_EQ(composed->nodes.size(), 5u);
  EXPECT_TRUE(HasQualTreeProperty(composed->nodes, composed->adjacency));
  // Composed tree is still a tree.
  size_t degree_sum = 0;
  for (const auto& adj : composed->adjacency) degree_sum += adj.size();
  EXPECT_EQ(degree_sum, 2 * (composed->nodes.size() - 1));
}

TEST(QualTreeTest, ComposeRejectsNonLeaf) {
  Hypergraph outer;
  outer.AddEdge("r^b", {1});
  outer.AddEdge("p", {1, 2});  // internal: q hangs below it
  outer.AddEdge("q", {2});
  GyoResult outer_gyo = GyoReduce(outer);
  ASSERT_TRUE(outer_gyo.acyclic);

  Hypergraph inner;
  inner.AddEdge("p^b", {1});
  inner.AddEdge("a", {1, 2});
  GyoResult inner_gyo = GyoReduce(inner);
  ASSERT_TRUE(inner_gyo.acyclic);

  auto composed = ComposeQualTrees(outer, outer_gyo.qual_tree, 0,
                                   /*outer_leaf=*/1, inner,
                                   inner_gyo.qual_tree, 0);
  EXPECT_FALSE(composed.ok());
  EXPECT_EQ(composed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QualTreeTest, ComposeRejectsRootAsLeaf) {
  Hypergraph hg;
  hg.AddEdge("h", {1});
  hg.AddEdge("a", {1});
  GyoResult gyo = GyoReduce(hg);
  ASSERT_TRUE(gyo.acyclic);
  auto composed =
      ComposeQualTrees(hg, gyo.qual_tree, 0, 0, hg, gyo.qual_tree, 0);
  EXPECT_FALSE(composed.ok());
}

TEST(QualTreeTest, RecursiveSelfCompositionPreservesProperty) {
  // Compose the linear-recursion qual tree with itself repeatedly —
  // "the property might be transmitted to all recursive extensions of
  // the rule" (§4.2). p(X,Z) :- a(X,Y), p(Y,Z) rooted at p^b{X}; p is
  // a leaf.
  Hypergraph base;
  base.AddEdge("p^b", {0});
  base.AddEdge("a", {0, 1});
  base.AddEdge("p", {1, 2});
  GyoResult gyo = GyoReduce(base);
  ASSERT_TRUE(gyo.acyclic);

  // First composition: rename inner vars so that inner p^b = {1}.
  Hypergraph inner;
  inner.AddEdge("p^b", {1});
  inner.AddEdge("a", {1, 3});
  inner.AddEdge("p", {3, 4});
  GyoResult inner_gyo = GyoReduce(inner);
  ASSERT_TRUE(inner_gyo.acyclic);

  auto composed = ComposeQualTrees(base, gyo.qual_tree, 0, 2, inner,
                                   inner_gyo.qual_tree, 0);
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(HasQualTreeProperty(composed->nodes, composed->adjacency));
  EXPECT_EQ(composed->nodes.size(), 4u);  // p^b, a, a', p'
}

}  // namespace
}  // namespace mpqe
