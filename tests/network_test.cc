// Tests for the message-passing substrate: mailbox FIFO, schedulers,
// quiescence, stop, stats, and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "msg/network.h"

namespace mpqe {
namespace {

// Forwards each received tuple message to a target, decrementing a
// hop counter carried in the tuple.
class RelayProcess : public Process {
 public:
  explicit RelayProcess(ProcessId target) : target_(target) {}

  void OnMessage(const Message& m) override {
    received.push_back(m);
    if (m.kind != MessageKind::kTuple) return;
    int64_t hops = m.values[0].payload();
    if (hops > 0) {
      Send(target_, MakeTuple({}, {Value::Int(hops - 1)}));
    }
  }

  std::vector<Message> received;

 private:
  ProcessId target_;
};

class StopperProcess : public Process {
 public:
  void OnMessage(const Message& m) override {
    ++count;
    if (count >= 3) network().RequestStop();
    (void)m;
  }
  int count = 0;
};

TEST(NetworkTest, DeterministicRunsToQuiescence) {
  Network net;
  auto* a = new RelayProcess(1);
  auto* b = new RelayProcess(0);
  net.AddProcess(std::unique_ptr<Process>(a));
  net.AddProcess(std::unique_ptr<Process>(b));
  net.Start();
  net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(5)}));
  auto run = net.RunDeterministic();
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->quiescent);
  EXPECT_FALSE(run->stopped);
  // 5 hops + initial = 6 deliveries.
  EXPECT_EQ(run->delivered, 6u);
  EXPECT_EQ(a->received.size() + b->received.size(), 6u);
}

TEST(NetworkTest, FifoPerChannel) {
  Network net;
  auto* a = new RelayProcess(0);
  net.AddProcess(std::unique_ptr<Process>(a));
  net.Start();
  for (int i = 0; i < 10; ++i) {
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(0)}));
    net.process(0);  // no-op, keep order obvious
  }
  auto run = net.RunDeterministic();
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(a->received.size(), 10u);
}

TEST(NetworkTest, StopRequestHonored) {
  Network net;
  auto* s = new StopperProcess();
  net.AddProcess(std::unique_ptr<Process>(s));
  net.Start();
  for (int i = 0; i < 10; ++i) net.Send(kNoProcess, 0, MakeRelationRequest());
  auto run = net.RunDeterministic();
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stopped);
  EXPECT_EQ(s->count, 3);
  EXPECT_GT(net.TotalPending(), 0u);  // undelivered mail remains
}

TEST(NetworkTest, MaxMessagesGuard) {
  Network net;
  auto* a = new RelayProcess(1);
  auto* b = new RelayProcess(0);
  net.AddProcess(std::unique_ptr<Process>(a));
  net.AddProcess(std::unique_ptr<Process>(b));
  net.Start();
  net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(1000000)}));
  auto run = net.RunDeterministic(/*max_messages=*/50);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
}

TEST(NetworkTest, StatsCountByKind) {
  Network net;
  auto* a = new RelayProcess(1);
  auto* b = new RelayProcess(0);
  net.AddProcess(std::unique_ptr<Process>(a));
  net.AddProcess(std::unique_ptr<Process>(b));
  net.Start();
  net.Send(kNoProcess, 0, MakeRelationRequest());
  net.Send(kNoProcess, 0, MakeEnd({}));
  net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(2)}));
  auto run = net.RunDeterministic();
  ASSERT_TRUE(run.ok());
  MessageStats stats = net.stats();
  EXPECT_EQ(stats.Count(MessageKind::kRelationRequest), 1u);
  EXPECT_EQ(stats.Count(MessageKind::kEnd), 1u);
  EXPECT_EQ(stats.Count(MessageKind::kTuple), 3u);  // initial + 2 hops
  EXPECT_EQ(stats.Total(), 5u);
  EXPECT_EQ(stats.ProtocolTotal(), 0u);
}

TEST(NetworkTest, RandomSchedulerDeliversEverything) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Network net;
    auto* a = new RelayProcess(1);
    auto* b = new RelayProcess(0);
    net.AddProcess(std::unique_ptr<Process>(a));
    net.AddProcess(std::unique_ptr<Process>(b));
    net.Start();
    net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(7)}));
    auto run = net.RunRandom(seed);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->quiescent);
    EXPECT_EQ(run->delivered, 8u) << "seed " << seed;
  }
}

// Counts messages; thread-safe.
class CountingProcess : public Process {
 public:
  explicit CountingProcess(std::atomic<int>* counter) : counter_(counter) {}
  void OnMessage(const Message& m) override {
    counter_->fetch_add(1);
    if (m.kind == MessageKind::kTuple && m.values[0].payload() > 0) {
      Send(process_id(), MakeTuple({}, {Value::Int(m.values[0].payload() - 1)}));
    }
  }

 private:
  std::atomic<int>* counter_;
};

TEST(NetworkTest, ThreadedRunsToQuiescence) {
  std::atomic<int> counter{0};
  Network net;
  const int kProcs = 8;
  for (int i = 0; i < kProcs; ++i) {
    net.AddProcess(std::make_unique<CountingProcess>(&counter));
  }
  net.Start();
  for (int i = 0; i < kProcs; ++i) {
    net.Send(kNoProcess, i, MakeTuple({}, {Value::Int(20)}));
  }
  auto run = net.RunThreaded(4);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->quiescent);
  EXPECT_EQ(counter.load(), kProcs * 21);
  EXPECT_EQ(run->delivered, static_cast<uint64_t>(kProcs * 21));
}

TEST(NetworkTest, ThreadedHandlesEmptyStart) {
  Network net;
  net.AddProcess(std::make_unique<CountingProcess>(new std::atomic<int>{0}));
  net.Start();
  auto run = net.RunThreaded(3);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->quiescent);
  EXPECT_EQ(run->delivered, 0u);
}

// Burns wall-clock inside OnMessage so the stall monitor sees "no
// delivery completed" intervals while work is still in flight.
class SleepyProcess : public Process {
 public:
  explicit SleepyProcess(int sleep_ms) : sleep_ms_(sleep_ms) {}
  void OnMessage(const Message& m) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    int64_t hops = m.values[0].payload();
    if (hops > 0) {
      Send(process_id(), MakeTuple({}, {Value::Int(hops - 1)}));
    }
  }

 private:
  int sleep_ms_;
};

TEST(NetworkTest, StallMonitorFiresOnSlowThreadedRun) {
  Network net;
  net.AddProcess(std::make_unique<SleepyProcess>(40));
  std::atomic<int> stalls{0};
  std::atomic<uint64_t> last_in_flight{0};
  net.ConfigureStallMonitor(5, [&](const StallInfo& info) {
    stalls.fetch_add(1);
    last_in_flight.store(info.in_flight);
    EXPECT_GE(info.stalled_ms, 5);
  });
  net.Start();
  net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(3)}));
  auto run = net.RunThreaded(2);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->quiescent);
  // Each 40ms handler stalls several 5ms intervals.
  EXPECT_GE(stalls.load(), 1);
}

TEST(NetworkTest, StallMonitorSilentOnFastRun) {
  std::atomic<int> counter{0};
  Network net;
  net.AddProcess(std::make_unique<CountingProcess>(&counter));
  std::atomic<int> stalls{0};
  net.ConfigureStallMonitor(60000, [&](const StallInfo&) {
    stalls.fetch_add(1);
  });
  net.Start();
  net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(10)}));
  auto run = net.RunThreaded(2);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->quiescent);
  EXPECT_EQ(stalls.load(), 0);
  // The deterministic scheduler ignores the monitor entirely.
  net.Send(kNoProcess, 0, MakeTuple({}, {Value::Int(2)}));
  ASSERT_TRUE(net.RunDeterministic().ok());
  EXPECT_EQ(stalls.load(), 0);
}

TEST(NetworkTest, PendingCountTracksMailbox) {
  Network net;
  auto* a = new RelayProcess(0);
  net.AddProcess(std::unique_ptr<Process>(a));
  EXPECT_EQ(net.PendingCount(0), 0u);
  net.Send(kNoProcess, 0, MakeRelationRequest());
  net.Send(kNoProcess, 0, MakeRelationRequest());
  EXPECT_EQ(net.PendingCount(0), 2u);
  EXPECT_EQ(net.TotalPending(), 2u);
}

TEST(MessageTest, ToStringIsInformative) {
  Message m = MakeTuple({Value::Int(1)}, {Value::Int(2), Value::Int(3)});
  std::string s = m.ToString();
  EXPECT_NE(s.find("tuple"), std::string::npos);
  EXPECT_NE(s.find("(1)"), std::string::npos);
  EXPECT_NE(s.find("(2, 3)"), std::string::npos);
  EXPECT_NE(MakeEndRequest(4).ToString().find("wave=4"), std::string::npos);
}

TEST(MessageTest, ProtocolClassification) {
  EXPECT_TRUE(IsProtocolMessage(MessageKind::kEndRequest));
  EXPECT_TRUE(IsProtocolMessage(MessageKind::kEndNegative));
  EXPECT_TRUE(IsProtocolMessage(MessageKind::kEndConfirmed));
  EXPECT_FALSE(IsProtocolMessage(MessageKind::kTuple));
  EXPECT_FALSE(IsProtocolMessage(MessageKind::kEnd));
}

}  // namespace
}  // namespace mpqe
