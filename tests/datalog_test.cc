// Unit tests for src/datalog: parser, AST pools, program analysis,
// validation.

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/program.h"

namespace mpqe {
namespace {

TEST(ParserTest, ParsesFactsIntoDatabase) {
  auto unit = Parse(R"(
    edge(a, b).
    edge(b, c).
    num(1, -2).
  )");
  ASSERT_TRUE(unit.ok());
  const Relation* edge = unit->database.GetRelation("edge");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->size(), 2u);
  const Relation* num = unit->database.GetRelation("num");
  ASSERT_NE(num, nullptr);
  EXPECT_TRUE(num->Contains({Value::Int(1), Value::Int(-2)}));
}

TEST(ParserTest, ParsesRulesAndQuery) {
  auto unit = Parse(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    ?- p(a, W).
  )");
  ASSERT_TRUE(unit.ok());
  const Program& prog = unit->program;
  ASSERT_EQ(prog.rules().size(), 3u);
  // The query became goal(W) :- p(a, W).
  const Rule& q = prog.rules()[2];
  EXPECT_EQ(prog.predicates().Name(q.head.predicate), "goal");
  EXPECT_EQ(q.head.arity(), 1u);
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(prog.predicates().Name(q.body[0].predicate), "p");
  EXPECT_TRUE(q.body[0].args[0].is_constant());
  EXPECT_TRUE(q.body[0].args[1].is_variable());
}

TEST(ParserTest, VariablesAreClauseScoped) {
  auto unit = Parse(R"(
    p(X) :- a(X).
    q(X) :- b(X).
  )");
  ASSERT_TRUE(unit.ok());
  VariableId v1 = unit->program.rules()[0].head.args[0].var();
  VariableId v2 = unit->program.rules()[1].head.args[0].var();
  EXPECT_NE(v1, v2);
}

TEST(ParserTest, RepeatedVariableInClauseShared) {
  auto unit = Parse("p(X, X) :- a(X).");
  ASSERT_TRUE(unit.ok());
  const Rule& r = unit->program.rules()[0];
  EXPECT_EQ(r.head.args[0].var(), r.head.args[1].var());
  EXPECT_EQ(r.head.args[0].var(), r.body[0].args[0].var());
}

TEST(ParserTest, AnonymousVariableIsFreshEachTime) {
  auto unit = Parse("p(X) :- a(X, _), b(X, _).");
  ASSERT_TRUE(unit.ok());
  const Rule& r = unit->program.rules()[0];
  EXPECT_NE(r.body[0].args[1].var(), r.body[1].args[1].var());
}

TEST(ParserTest, StringAndSymbolConstants) {
  auto unit = Parse(R"(city("San Jose"). city(tokyo).)");
  ASSERT_TRUE(unit.ok());
  const Relation* city = unit->database.GetRelation("city");
  ASSERT_NE(city, nullptr);
  EXPECT_EQ(city->size(), 2u);
  EXPECT_TRUE(city->Contains({unit->database.Sym("San Jose")}));
  EXPECT_TRUE(city->Contains({unit->database.Sym("tokyo")}));
}

TEST(ParserTest, CommentsIgnored) {
  auto unit = Parse(R"(
    % a comment
    f(1).  % trailing comment
  )");
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit->database.TotalFacts(), 1u);
}

TEST(ParserTest, ZeroArityAtoms) {
  auto unit = Parse(R"(
    raining.
    sad :- raining.
  )");
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit->database.GetRelation("raining")->arity(), 0u);
  EXPECT_EQ(unit->program.rules().size(), 1u);
}

TEST(ParserTest, RejectsFactWithVariable) {
  auto unit = Parse("edge(a, X).");
  ASSERT_FALSE(unit.ok());
  EXPECT_EQ(unit.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, RejectsArityClash) {
  auto unit = Parse(R"(
    p(X) :- e(X).
    p(X, Y) :- e(X), e(Y).
  )");
  ASSERT_FALSE(unit.ok());
}

TEST(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(Parse("p(X :- q(X).").ok());
  EXPECT_FALSE(Parse("p(X) :- .").ok());
  EXPECT_FALSE(Parse("p(X)").ok());  // missing period
  EXPECT_FALSE(Parse("p(X) q(X).").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("p(X) :- q(X). @").ok());
}

TEST(ParserTest, ReportsLineNumbers) {
  auto unit = Parse("f(1).\nf(2).\np(X :- q.\n");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("line 3"), std::string::npos);
}

TEST(ProgramTest, EdbIdbClassification) {
  auto unit = Parse(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    ?- p(a, W).
  )");
  ASSERT_TRUE(unit.ok());
  const Program& prog = unit->program;
  PredicateId p = prog.predicates().Find("p");
  PredicateId e = prog.predicates().Find("e");
  EXPECT_TRUE(prog.IsIdb(p));
  EXPECT_TRUE(prog.IsEdb(e));
  EXPECT_TRUE(prog.IsIdb(prog.GoalPredicate()));
}

TEST(ProgramTest, RecursionDetection) {
  auto unit = Parse(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    s(X) :- p(X, X).
    ?- s(W).
  )");
  ASSERT_TRUE(unit.ok());
  const Program& prog = unit->program;
  EXPECT_TRUE(prog.IsRecursive(prog.predicates().Find("p")));
  EXPECT_FALSE(prog.IsRecursive(prog.predicates().Find("s")));
  EXPECT_FALSE(prog.IsRecursive(prog.predicates().Find("e")));
}

TEST(ProgramTest, MutualRecursionDetection) {
  auto unit = Parse(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    ?- even(N).
  )");
  ASSERT_TRUE(unit.ok());
  const Program& prog = unit->program;
  EXPECT_TRUE(prog.IsRecursive(prog.predicates().Find("even")));
  EXPECT_TRUE(prog.IsRecursive(prog.predicates().Find("odd")));
}

TEST(ProgramTest, DependencySccOrder) {
  auto unit = Parse(R"(
    a(X) :- b(X).
    b(X) :- base(X).
    ?- a(X).
  )");
  ASSERT_TRUE(unit.ok());
  PredicateDependencies deps = AnalyzeDependencies(unit->program);
  const auto& preds = unit->program.predicates();
  // Components are numbered callees-first: base < b < a < goal.
  EXPECT_LT(deps.scc_of[preds.Find("base")], deps.scc_of[preds.Find("b")]);
  EXPECT_LT(deps.scc_of[preds.Find("b")], deps.scc_of[preds.Find("a")]);
  EXPECT_LT(deps.scc_of[preds.Find("a")],
            deps.scc_of[unit->program.GoalPredicate()]);
}

TEST(ProgramTest, ValidateRequiresQuery) {
  auto unit = Parse("p(X) :- e(X).");
  ASSERT_TRUE(unit.ok());
  Status s = unit->program.Validate(&unit->database);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ProgramTest, ValidateRejectsGoalInBody) {
  auto unit = Parse(R"(
    p(X) :- goal(X).
    ?- p(X).
  )");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(unit->program.Validate(&unit->database).ok());
}

TEST(ProgramTest, ValidateRejectsUnsafeRule) {
  auto unit = Parse(R"(
    p(X, Y) :- e(X).
    ?- p(a, W).
  )");
  ASSERT_TRUE(unit.ok());
  Status s = unit->program.Validate(&unit->database);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unsafe"), std::string::npos);
}

TEST(ProgramTest, ValidateRejectsMixedEdbIdb) {
  auto unit = Parse(R"(
    e(a, b).
    e(X, Y) :- f(X, Y).
    ?- e(X, Y).
  )");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(unit->program.Validate(&unit->database).ok());
}

TEST(ProgramTest, ValidateCreatesEmptyEdbRelations) {
  auto unit = Parse(R"(
    p(X) :- never(X).
    ?- p(X).
  )");
  ASSERT_TRUE(unit.ok());
  ASSERT_TRUE(unit->program.Validate(&unit->database).ok());
  ASSERT_NE(unit->database.GetRelation("never"), nullptr);
  EXPECT_EQ(unit->database.GetRelation("never")->size(), 0u);
}

TEST(ProgramTest, RuleToStringRoundTrips) {
  auto unit = Parse("p(X, Y) :- e(X, Z), p(Z, Y).");
  ASSERT_TRUE(unit.ok());
  std::string s = unit->program.RuleToString(unit->program.rules()[0],
                                             &unit->database.symbols());
  // Variable names carry a clause suffix; check shape.
  EXPECT_NE(s.find("p("), std::string::npos);
  EXPECT_NE(s.find(":-"), std::string::npos);
  EXPECT_NE(s.find("e("), std::string::npos);
  EXPECT_EQ(s.back(), '.');
}

TEST(ProgramTest, AddQueryCollectsVariablesInOrder) {
  auto unit = Parse("?- e(X, Y), f(Y, Z).");
  ASSERT_TRUE(unit.ok());
  const Rule& q = unit->program.rules()[0];
  EXPECT_EQ(q.head.arity(), 3u);  // X, Y, Z
}

}  // namespace
}  // namespace mpqe
