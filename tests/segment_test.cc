// Tests for columnar tuple segments (msg/segment.h): the segmented
// path computes exactly the relations and proof trees of the per-tuple
// seed path, across schedulers; segment edge cases (empty, arity 0,
// flush at the size cap); and shared fan-out (one segment object sent
// to several consumers without copying rows).

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "baseline/bottom_up.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "msg/segment.h"
#include "obs/lineage.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

EvaluationOptions PerTuple() {
  EvaluationOptions options;
  options.segment_messages = false;
  return options;
}

// Records, per sent segment payload object, the set of destinations it
// traveled to, and the largest row count seen on the wire.
class SegmentRecorder : public ExecutionObserver {
 public:
  void OnSend(const SendEvent& event) override {
    const Message& m = *event.message;
    std::lock_guard<std::mutex> lock(mutex_);
    if (m.kind == MessageKind::kTupleSegment) {
      Note(m, event.to);
    } else if (m.kind == MessageKind::kBatch) {
      for (const Message& sub : m.batch()) {
        if (sub.kind == MessageKind::kTupleSegment) Note(sub, event.to);
      }
    }
  }

  size_t max_rows() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_rows_;
  }

  size_t min_rows() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return min_rows_;
  }

  /// Number of distinct segment objects delivered to >= 2 consumers.
  size_t shared_segments() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t shared = 0;
    for (const auto& [ptr, destinations] : fanout_) {
      if (destinations.size() >= 2) ++shared;
    }
    return shared;
  }

 private:
  void Note(const Message& m, ProcessId to) {
    const TupleSegment* segment = m.segment_ptr().get();
    fanout_[segment].insert(to);
    max_rows_ = std::max(max_rows_, segment->num_rows);
    min_rows_ = std::min(min_rows_, segment->num_rows);
  }

  mutable std::mutex mutex_;
  std::map<const TupleSegment*, std::set<ProcessId>> fanout_;
  size_t max_rows_ = 0;
  size_t min_rows_ = ~size_t{0};
};

// ---------------------------------------------------------------------------
// TupleSegment basics

TEST(TupleSegmentTest, LayoutAndAccessors) {
  TupleSegment segment;
  segment.arity = 2;
  EXPECT_TRUE(segment.empty());
  segment.AppendRow(Tuple{Value::Int(1), Value::Int(2)});
  segment.AppendRow(Tuple{Value::Int(3), Value::Int(4)});
  EXPECT_FALSE(segment.empty());
  EXPECT_EQ(segment.num_rows, 2u);
  EXPECT_EQ(segment.values.size(), 4u);
  EXPECT_EQ(segment.row(1)[0], Value::Int(3));
  // No lineage column: every row reads kNoLineage.
  EXPECT_EQ(segment.row_lineage(0), kNoLineage);
  segment.lineage = {7, 9};
  EXPECT_EQ(segment.row_lineage(1), 9u);
}

TEST(TupleSegmentTest, ArityZeroRowsAreCounted) {
  // num_rows is explicit, so nullary tuples still count.
  TupleSegment segment;
  segment.arity = 0;
  segment.AppendRow(Tuple{});
  segment.AppendRow(Tuple{});
  EXPECT_EQ(segment.num_rows, 2u);
  EXPECT_TRUE(segment.values.empty());
  EXPECT_EQ(segment.row(1).size(), 0u);
}

TEST(TupleSegmentTest, EmptySegmentToleratedByConsumer) {
  // Producers never emit empty segments, but consumers must not
  // misbehave if handed one (defensive decoding).
  auto segment = std::make_shared<TupleSegment>();
  segment->arity = 2;
  SinkProcess sink(/*root_pid=*/0, /*answer_arity=*/2);
  sink.OnMessage(MakeTupleSegment(segment));
  EXPECT_TRUE(sink.answers().empty());
  EXPECT_FALSE(sink.done());
}

// ---------------------------------------------------------------------------
// Engine equivalence

TEST(SegmentTest, TransitiveClosureMatchesPerTuple) {
  // Nonlinear TC on a cycle: the tc relation grows to n^2 and answer
  // runs span many rows, so real multi-row segments travel.
  Database db1, db2;
  ASSERT_TRUE(workload::MakeCycle(db1, "edge", 12).ok());
  ASSERT_TRUE(workload::MakeCycle(db2, "edge", 12).ok());
  Program p1, p2;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), p1, db1).ok());
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), p2, db2).ok());
  auto segmented = Evaluate(p1, db1);  // segments default on
  auto per_tuple = Evaluate(p2, db2, PerTuple());
  ASSERT_TRUE(segmented.ok()) << segmented.status();
  ASSERT_TRUE(per_tuple.ok());
  EXPECT_TRUE(segmented->answers == per_tuple->answers);
  EXPECT_TRUE(segmented->ended_by_protocol);

  const MessageStats& s = segmented->message_stats;
  EXPECT_GT(s.Count(MessageKind::kTupleSegment), 0u);
  EXPECT_GT(s.segment_rows, 0u);
  EXPECT_EQ(per_tuple->message_stats.Count(MessageKind::kTupleSegment), 0u);
  EXPECT_EQ(per_tuple->message_stats.segment_rows, 0u);
  // Far fewer physical messages: the segmented run replaces most
  // per-tuple messages with multi-row segments.
  EXPECT_LT(s.PhysicalTotal(), per_tuple->message_stats.PhysicalTotal());
}

TEST(SegmentTest, WorksWithBatchingCoalescingAndSchedulers) {
  Relation truth{0};
  {
    Database db;
    EXPECT_TRUE(workload::MakeCycle(db, "edge", 10).ok());
    Program program;
    EXPECT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    auto t = SemiNaiveBottomUp(program, db);
    ASSERT_TRUE(t.ok());
    truth = t->goal;
  }
  for (int batch = 0; batch <= 1; ++batch) {
    for (int coalesce = 0; coalesce <= 1; ++coalesce) {
      for (int sched = 0; sched < 3; ++sched) {
        Database db;
        ASSERT_TRUE(workload::MakeCycle(db, "edge", 10).ok());
        Program program;
        ASSERT_TRUE(
            ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
        EvaluationOptions options;
        options.batch_messages = batch == 1;
        options.graph_options.coalesce_nodes = coalesce == 1;
        options.scheduler = static_cast<SchedulerKind>(sched);
        options.seed = 17;
        options.workers = 3;
        auto result = Evaluate(program, db, options);
        ASSERT_TRUE(result.ok())
            << "batch=" << batch << " coalesce=" << coalesce
            << " sched=" << sched << ": " << result.status();
        EXPECT_TRUE(result->ended_by_protocol)
            << "batch=" << batch << " coalesce=" << coalesce
            << " sched=" << sched;
        EXPECT_TRUE(result->answers == truth)
            << "batch=" << batch << " coalesce=" << coalesce
            << " sched=" << sched;
      }
    }
  }
}

TEST(SegmentTest, ArityZeroProgramEvaluates) {
  auto unit = Parse(R"(
    rain.
    wet :- rain.
    flooded :- wet, rain.
    ?- flooded.
  )");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  auto result = Evaluate(unit->program, unit->database);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.arity(), 0u);
  EXPECT_EQ(result->answers.size(), 1u);
}

// ---------------------------------------------------------------------------
// Proof-tree equivalence (the segmented path records identical lineage)

// Chain transitive closure from a fixed start: every answer has
// exactly one derivation, so the WHY proof tree is
// schedule-independent (modulo ids). The query is tc(0, W); answers
// are arity 1.
std::map<std::string, std::string> ProofsByAnswer(
    const EvaluationResult& result) {
  std::map<std::string, std::string> proofs;
  ProofFormatOptions no_ids;
  no_ids.include_ids = false;
  for (size_t i = 0; i < result.answers.size(); ++i) {
    Tuple row = result.answers.tuple(i).ToTuple();
    std::vector<std::optional<Value>> args{Value::Int(0), row[0]};
    auto matches = result.lineage->Match("tc", args);
    EXPECT_FALSE(matches.empty());
    if (matches.empty()) continue;
    proofs[TupleToString(row)] =
        result.lineage->FormatProof(matches.front()->id, no_ids);
  }
  return proofs;
}

TEST(SegmentTest, ProofTreesMatchPerTuplePath) {
  auto eval = [](bool segments, SchedulerKind scheduler) {
    Database db;
    EXPECT_TRUE(workload::MakeChain(db, "edge", 16).ok());
    Program program;
    EXPECT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.segment_messages = segments;
    options.scheduler = scheduler;
    options.workers = 3;
    options.lineage = true;
    auto result = Evaluate(program, db, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return *std::move(result);
  };
  EvaluationResult seed = eval(false, SchedulerKind::kDeterministic);
  ASSERT_NE(seed.lineage, nullptr);
  auto seed_proofs = ProofsByAnswer(seed);
  ASSERT_EQ(seed_proofs.size(), seed.answers.size());

  for (SchedulerKind scheduler :
       {SchedulerKind::kDeterministic, SchedulerKind::kThreaded}) {
    EvaluationResult segmented = eval(true, scheduler);
    ASSERT_NE(segmented.lineage, nullptr);
    EXPECT_TRUE(segmented.answers == seed.answers);
    EXPECT_EQ(segmented.lineage->records.size(), seed.lineage->records.size());
    auto proofs = ProofsByAnswer(segmented);
    EXPECT_EQ(proofs, seed_proofs)
        << "scheduler=" << SchedulerKindToName(scheduler);
  }
}

// ---------------------------------------------------------------------------
// Flush policy

TEST(SegmentTest, SegmentsRespectTheRowCap) {
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 16).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  SegmentRecorder recorder;
  EvaluationOptions options;
  options.segment_max_rows = 8;
  // Pin the adaptive cap: this test asserts the exact fixed cap, so
  // disable growth toward segment_max_rows_limit.
  options.segment_max_rows_limit = 0;
  options.observers.push_back(&recorder);
  auto result = Evaluate(program, db, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Nonlinear TC on a 16-cycle produces answer runs well past 8 rows,
  // so the cap must split them into multiple full segments.
  EXPECT_GT(result->message_stats.Count(MessageKind::kTupleSegment), 1u);
  EXPECT_EQ(recorder.max_rows(), 8u);
  // Single-row segments are demoted to bare kTuple messages.
  EXPECT_GE(recorder.min_rows(), 2u);
}

TEST(SegmentTest, RowCapMustBePositive) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 4).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  EvaluationOptions options;
  options.segment_max_rows = 0;
  auto result = Evaluate(program, db, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Vectorized-vs-per-row equivalence (batch kernels on/off)

TEST(SegmentTest, VectorizedMatchesRowAtATimeMatrix) {
  // Nonlinear TC on a cycle re-derives heavily, so every arm of the
  // matrix exercises real duplicate traffic. The vectorized batch
  // kernels (InsertSegment absorption, batch child-answer dedup) must
  // reproduce the row-at-a-time path's answer set exactly, and — on
  // the deterministic scheduler, where both paths see the identical
  // message stream — the identical duplicate-drop count.
  Relation truth{0};
  {
    Database db;
    ASSERT_TRUE(workload::MakeCycle(db, "edge", 12).ok());
    Program program;
    ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    auto t = SemiNaiveBottomUp(program, db);
    ASSERT_TRUE(t.ok());
    truth = t->goal;
  }
  auto eval = [](bool vectorized, SchedulerKind scheduler, bool lineage) {
    Database db;
    EXPECT_TRUE(workload::MakeCycle(db, "edge", 12).ok());
    Program program;
    EXPECT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.vectorized_segments = vectorized;
    options.scheduler = scheduler;
    options.seed = 23;
    options.workers = 3;
    options.lineage = lineage;
    auto result = Evaluate(program, db, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return *std::move(result);
  };
  for (SchedulerKind scheduler :
       {SchedulerKind::kDeterministic, SchedulerKind::kThreaded}) {
    for (bool lineage : {false, true}) {
      EvaluationResult row = eval(false, scheduler, lineage);
      EvaluationResult vec = eval(true, scheduler, lineage);
      std::string arm = std::string("scheduler=") +
                        SchedulerKindToName(scheduler) +
                        " lineage=" + (lineage ? "on" : "off");
      EXPECT_TRUE(row.answers == truth) << arm;
      EXPECT_TRUE(vec.answers == truth) << arm;
      EXPECT_TRUE(row.ended_by_protocol) << arm;
      EXPECT_TRUE(vec.ended_by_protocol) << arm;
      if (scheduler == SchedulerKind::kDeterministic) {
        EXPECT_EQ(vec.counters.duplicate_drops,
                  row.counters.duplicate_drops)
            << arm;
      }
      if (lineage) {
        ASSERT_NE(row.lineage, nullptr) << arm;
        ASSERT_NE(vec.lineage, nullptr) << arm;
        // One record per distinct tuple, whichever path derived it.
        EXPECT_EQ(vec.lineage->records.size(), row.lineage->records.size())
            << arm;
      }
    }
  }
}

TEST(SegmentTest, VectorizedProofTreesMatchRowAtATime) {
  // Chain TC from a fixed start: unique derivations, so proof trees
  // must come out byte-identical (modulo ids) whichever kernel built
  // them, under both schedulers.
  auto eval = [](bool vectorized, SchedulerKind scheduler) {
    Database db;
    EXPECT_TRUE(workload::MakeChain(db, "edge", 16).ok());
    Program program;
    EXPECT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
    EvaluationOptions options;
    options.vectorized_segments = vectorized;
    options.scheduler = scheduler;
    options.workers = 3;
    options.lineage = true;
    auto result = Evaluate(program, db, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return *std::move(result);
  };
  EvaluationResult seed = eval(false, SchedulerKind::kDeterministic);
  ASSERT_NE(seed.lineage, nullptr);
  auto seed_proofs = ProofsByAnswer(seed);
  ASSERT_EQ(seed_proofs.size(), seed.answers.size());
  for (SchedulerKind scheduler :
       {SchedulerKind::kDeterministic, SchedulerKind::kThreaded}) {
    EvaluationResult vec = eval(true, scheduler);
    ASSERT_NE(vec.lineage, nullptr);
    EXPECT_TRUE(vec.answers == seed.answers);
    EXPECT_EQ(ProofsByAnswer(vec), seed_proofs)
        << "scheduler=" << SchedulerKindToName(scheduler);
  }
}

// ---------------------------------------------------------------------------
// Adaptive segment sizing

TEST(SegmentTest, AdaptiveCapGrowsTowardLimit) {
  // Nonlinear TC on a 16-cycle ships long answer runs. With a tiny
  // starting cap and a higher limit, consecutive full seals must
  // double the per-destination cap past the start, and no segment may
  // ever exceed the limit.
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 16).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  SegmentRecorder recorder;
  EvaluationOptions options;
  options.segment_max_rows = 4;
  options.segment_max_rows_limit = 32;
  options.observers.push_back(&recorder);
  auto result = Evaluate(program, db, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(recorder.max_rows(), 4u);
  EXPECT_LE(recorder.max_rows(), 32u);
}

TEST(SegmentTest, AdaptiveCapRejectsLimitBelowCap) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 4).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  EvaluationOptions options;
  options.segment_max_rows = 64;
  options.segment_max_rows_limit = 8;  // nonzero but below the cap
  auto result = Evaluate(program, db, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Shared fan-out

TEST(SegmentTest, FanOutSharesOneSegmentAcrossConsumers) {
  // Nonlinear TC: the tc goal node feeds both recursive subgoals, so
  // its answer segments fan out to two consumers. The recorder checks
  // the *same object* was sent to both — zero row copies.
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 12).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  SegmentRecorder recorder;
  EvaluationOptions options;
  options.observers.push_back(&recorder);
  auto result = Evaluate(program, db, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(recorder.shared_segments(), 0u);
}

}  // namespace
}  // namespace mpqe
