// Tests for the logging/check machinery.

#include <gtest/gtest.h>

#include "common/logging.h"

namespace mpqe {
namespace {

TEST(LoggingTest, CheckPassesSilently) {
  MPQE_CHECK(1 + 1 == 2) << "never evaluated";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ MPQE_CHECK(false) << "boom value=" << 42; },
               "CHECK failed.*false.*boom value=42");
}

TEST(LoggingDeathTest, CheckFailureShowsCondition) {
  int x = 3;
  EXPECT_DEATH({ MPQE_CHECK(x > 10) << "x=" << x; }, "x > 10");
}

TEST(LoggingTest, LogLevelFiltering) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  MPQE_LOG(kInfo) << "hidden";
  MPQE_LOG(kError) << "shown";
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("shown"), std::string::npos);
  SetLogLevel(old_level);
}

TEST(LoggingTest, LogIncludesLevelAndLocation) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  MPQE_LOG(kWarning) << "careful";
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("WARNING"), std::string::npos);
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(err.find("careful"), std::string::npos);
  SetLogLevel(old_level);
}

TEST(LoggingTest, DisabledLogDoesNotEvaluateExpensively) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Streaming still evaluates arguments (by design — keep them cheap),
  // but the message must not reach stderr.
  testing::internal::CaptureStderr();
  MPQE_LOG(kDebug) << "quiet";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace mpqe
