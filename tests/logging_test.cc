// Tests for the logging/check machinery.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"

namespace mpqe {
namespace {

TEST(LoggingTest, CheckPassesSilently) {
  MPQE_CHECK(1 + 1 == 2) << "never evaluated";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ MPQE_CHECK(false) << "boom value=" << 42; },
               "CHECK failed.*false.*boom value=42");
}

TEST(LoggingDeathTest, CheckFailureShowsCondition) {
  int x = 3;
  EXPECT_DEATH({ MPQE_CHECK(x > 10) << "x=" << x; }, "x > 10");
}

TEST(LoggingTest, LogLevelFiltering) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  MPQE_LOG(kInfo) << "hidden";
  MPQE_LOG(kError) << "shown";
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("shown"), std::string::npos);
  SetLogLevel(old_level);
}

TEST(LoggingTest, LogIncludesLevelAndLocation) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  MPQE_LOG(kWarning) << "careful";
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("WARNING"), std::string::npos);
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(err.find("careful"), std::string::npos);
  SetLogLevel(old_level);
}

TEST(LoggingTest, LogLevelNamesAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARNING");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(LoggingTest, ThreadTagIsStablePerThreadAndDistinctAcross) {
  const char* mine = ThreadTag();
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine[0], 't');
  EXPECT_STREQ(mine, ThreadTag());  // stable within a thread
  std::string other;
  std::thread([&other] { other = ThreadTag(); }).join();
  EXPECT_EQ(other[0], 't');
  EXPECT_NE(other, mine);
}

TEST(LoggingTest, DisabledLogDoesNotEvaluateExpensively) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Streaming still evaluates arguments (by design — keep them cheap),
  // but the message must not reach stderr.
  testing::internal::CaptureStderr();
  MPQE_LOG(kDebug) << "quiet";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace mpqe
