// Algebraic properties of the relational operators over randomized
// relations: commutativity/associativity of join (up to column
// permutation), semijoin as a projection of join, selection/projection
// interactions, and union/difference set laws.

#include <gtest/gtest.h>

#include "common/random.h"
#include "relational/operators.h"

namespace mpqe {
namespace {

Relation RandomRelation(Rng& rng, size_t arity, size_t rows, int64_t domain) {
  Relation r(arity);
  for (size_t i = 0; i < rows; ++i) {
    Tuple t;
    for (size_t j = 0; j < arity; ++j) {
      t.push_back(Value::Int(rng.Range(0, domain - 1)));
    }
    r.Insert(std::move(t));
  }
  return r;
}

class OperatorLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OperatorLaws, JoinIsCommutativeUpToColumnOrder) {
  Rng rng(GetParam());
  Relation a = RandomRelation(rng, 2, 20, 6);
  Relation b = RandomRelation(rng, 2, 20, 6);
  Relation ab = Join(a, b, {{1, 0}});
  Relation ba = Join(b, a, {{0, 1}});
  // ab columns: a0 a1 b0 b1; ba columns: b0 b1 a0 a1.
  Relation ba_reordered = Project(ba, {2, 3, 0, 1});
  EXPECT_TRUE(ab == ba_reordered);
}

TEST_P(OperatorLaws, JoinIsAssociativeUpToColumnOrder) {
  Rng rng(GetParam() + 50);
  Relation a = RandomRelation(rng, 2, 12, 5);
  Relation b = RandomRelation(rng, 2, 12, 5);
  Relation c = RandomRelation(rng, 2, 12, 5);
  // (a |><| b) |><| c, joining a1=b0 and b1=c0.
  Relation ab = Join(a, b, {{1, 0}});
  Relation ab_c = Join(ab, c, {{3, 0}});
  // a |><| (b |><| c).
  Relation bc = Join(b, c, {{1, 0}});
  Relation a_bc = Join(a, bc, {{1, 0}});
  EXPECT_TRUE(ab_c == a_bc);  // same column order: a0 a1 b0 b1 c0 c1
}

TEST_P(OperatorLaws, SemiJoinIsProjectedJoin) {
  Rng rng(GetParam() + 100);
  Relation a = RandomRelation(rng, 2, 25, 6);
  Relation b = RandomRelation(rng, 2, 25, 6);
  Relation semi = SemiJoin(a, b, {{1, 0}});
  Relation join = Join(a, b, {{1, 0}});
  Relation projected = Project(join, {0, 1});
  EXPECT_TRUE(semi == projected);
}

TEST_P(OperatorLaws, SemiJoinIsIdempotent) {
  Rng rng(GetParam() + 150);
  Relation a = RandomRelation(rng, 2, 25, 6);
  Relation b = RandomRelation(rng, 1, 10, 6);
  Relation once = SemiJoin(a, b, {{0, 0}});
  Relation twice = SemiJoin(once, b, {{0, 0}});
  EXPECT_TRUE(once == twice);
  // And a subset of the input.
  for (TupleRef t : once.tuples()) {
    EXPECT_TRUE(a.Contains(t));
  }
}

TEST_P(OperatorLaws, SelectionCommutesWithProjectionWhenColumnsKept) {
  Rng rng(GetParam() + 200);
  Relation a = RandomRelation(rng, 3, 30, 5);
  Selection sel;
  sel.value_conditions.push_back({0, Value::Int(2)});
  Relation select_project = Project(Select(a, sel), {0, 2});
  Selection sel2;
  sel2.value_conditions.push_back({0, Value::Int(2)});
  Relation project_select = Select(Project(a, {0, 2}), sel2);
  EXPECT_TRUE(select_project == project_select);
}

TEST_P(OperatorLaws, UnionAndDifferenceLaws) {
  Rng rng(GetParam() + 250);
  Relation a = RandomRelation(rng, 2, 20, 5);
  Relation b = RandomRelation(rng, 2, 20, 5);
  // (a - b) ∪ (a ∩ b) == a, where a ∩ b = a - (a - b).
  Relation diff = Difference(a, b);
  Relation inter = Difference(a, diff);
  EXPECT_TRUE(Union(diff, inter) == a);
  // Union commutative; difference anti-monotone bound.
  EXPECT_TRUE(Union(a, b) == Union(b, a));
  EXPECT_LE(diff.size(), a.size());
  for (TupleRef t : inter.tuples()) {
    EXPECT_TRUE(b.Contains(t));
  }
}

TEST_P(OperatorLaws, JoinWithSelfOnAllColumnsIsIdentity) {
  Rng rng(GetParam() + 300);
  Relation a = RandomRelation(rng, 2, 15, 6);
  Relation self = Join(a, a, {{0, 0}, {1, 1}});
  Relation left = Project(self, {0, 1});
  EXPECT_TRUE(left == a);
}

TEST_P(OperatorLaws, SelectThenCountMatchesManualFilter) {
  Rng rng(GetParam() + 350);
  Relation a = RandomRelation(rng, 3, 40, 4);
  Selection sel;
  sel.column_conditions.push_back({0, 2});
  Relation out = Select(a, sel);
  size_t expected = 0;
  for (TupleRef t : a.tuples()) {
    if (t[0] == t[2]) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorLaws,
                         ::testing::Range(uint64_t{0}, uint64_t{15}));

}  // namespace
}  // namespace mpqe
