// Tests for information passing strategies (§2.2), including the
// paper's greedy strategy on program P1 (Example 2.1):
//   p(X^d, U^f) -> q(U^d, V^f) -> p(V^d, Y^f)
// and the qual-tree strategy of Theorem 4.1.

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "sips/adorned_printer.h"
#include "sips/strategy.h"

namespace mpqe {
namespace {

Adornment Df() { return {BindingClass::kDynamic, BindingClass::kFree}; }

std::string Classes(const SipsResult& r, size_t subgoal) {
  return AdornmentToString(r.subgoal_adornments[subgoal]);
}

TEST(GreedySipsTest, P1RecursiveRuleMatchesFig1) {
  // P1's recursive rule: p(X, Y) :- p(X, V), q(V, W), p(W, Y), head d,f.
  auto unit = Parse("p(X, Y) :- p(X, V), q(V, W), p(W, Y).");
  ASSERT_TRUE(unit.ok());
  auto strategy = MakeGreedyStrategy();
  auto r = strategy->Classify(unit->program.rules()[0], Df(), unit->program);
  ASSERT_TRUE(r.ok());
  // Order: leftmost p (1 bound), then q, then right p — as in Fig. 1.
  EXPECT_EQ(r->order, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(Classes(*r, 0), "df");
  EXPECT_EQ(Classes(*r, 1), "df");
  EXPECT_EQ(Classes(*r, 2), "df");
  // Information passing arcs: p1 -> q -> p2.
  EXPECT_EQ(r->arcs[0], (std::vector<size_t>{1}));
  EXPECT_EQ(r->arcs[1], (std::vector<size_t>{2}));
  EXPECT_TRUE(r->arcs[2].empty());
}

TEST(GreedySipsTest, PicksMostBoundFirst) {
  // head s(A^d, D^f); b(A, B, C) has 1 bound arg; a(B) has 0; after b,
  // everything is bound.
  auto unit = Parse("s(A, D) :- a(B), b(A, B, C), c(C, D).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeGreedyStrategy()->Classify(unit->program.rules()[0], Df(),
                                          unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order, (std::vector<size_t>{1, 0, 2}));
  EXPECT_EQ(Classes(*r, 1), "dff");  // b evaluated first
  EXPECT_EQ(Classes(*r, 0), "d");    // a receives B
  EXPECT_EQ(Classes(*r, 2), "df");   // c receives C
}

TEST(GreedySipsTest, NoBindingsAllFree) {
  auto unit = Parse("s(A, B) :- a(A), b(B).");
  ASSERT_TRUE(unit.ok());
  Adornment ff = {BindingClass::kFree, BindingClass::kFree};
  auto r =
      MakeGreedyStrategy()->Classify(unit->program.rules()[0], ff, unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Classes(*r, 0), "f");
  EXPECT_EQ(Classes(*r, 1), "f");
  EXPECT_TRUE(r->arcs[0].empty());
  EXPECT_TRUE(r->arcs[1].empty());
}

TEST(LeftToRightSipsTest, FollowsTextualOrder) {
  auto unit = Parse("s(A, D) :- a(B), b(A, B, C), c(C, D).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeLeftToRightStrategy()->Classify(unit->program.rules()[0], Df(),
                                               unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(Classes(*r, 0), "f");    // a(B) solved blind, Prolog-style
  EXPECT_EQ(Classes(*r, 1), "ddf");  // b gets A from head, B from a
  EXPECT_EQ(Classes(*r, 2), "df");
}

TEST(ClassifyTest, ConstantsAreClassC) {
  auto unit = Parse("s(Y) :- r(a, Y).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeGreedyStrategy()->Classify(unit->program.rules()[0],
                                          {BindingClass::kFree}, unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Classes(*r, 0), "cf");
}

TEST(ClassifyTest, SingleUseVariableIsExistential) {
  // goal p(X^f): Y appears only in r and nowhere else -> e.
  auto unit = Parse("p(X) :- r(X, Y).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeGreedyStrategy()->Classify(unit->program.rules()[0],
                                          {BindingClass::kFree}, unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Classes(*r, 0), "fe");
}

TEST(ClassifyTest, SharedVariableIsNotExistential) {
  // Y joins r and s, so it must be f then d.
  auto unit = Parse("p(X) :- r(X, Y), s(Y).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeGreedyStrategy()->Classify(unit->program.rules()[0],
                                          {BindingClass::kDynamic},
                                          unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Classes(*r, 0), "df");
  EXPECT_EQ(Classes(*r, 1), "d");
}

TEST(ClassifyTest, HeadExistentialPropagates) {
  // Head position is e: the body occurrence of Y may also be e since
  // only existence is needed ("one tuple for each unique X", §2.2).
  auto unit = Parse("p(X, Y) :- r(X, Y).");
  ASSERT_TRUE(unit.ok());
  Adornment head = {BindingClass::kDynamic, BindingClass::kExistential};
  auto r = MakeGreedyStrategy()->Classify(unit->program.rules()[0], head,
                                          unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Classes(*r, 0), "de");
}

TEST(ClassifyTest, HeadFreeVariableStaysFree) {
  auto unit = Parse("p(X, Y) :- r(X, Y).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeGreedyStrategy()->Classify(unit->program.rules()[0], Df(),
                                          unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Classes(*r, 0), "df");
}

TEST(ClassifyTest, RepeatedVariableInOneSubgoalSharesClass) {
  auto unit = Parse("p(X) :- r(X, X).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeGreedyStrategy()->Classify(unit->program.rules()[0],
                                          {BindingClass::kDynamic},
                                          unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Classes(*r, 0), "dd");
}

TEST(NoSipsTest, EverythingFreeExceptConstants) {
  auto unit = Parse("p(X, Y) :- r(X, V), q(V, a), s(Y).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeNoSipsStrategy()->Classify(unit->program.rules()[0], Df(),
                                          unit->program);
  ASSERT_TRUE(r.ok());
  // Even the head-bound X stays d only through the head; subgoal vars
  // are f because no sideways passing happens.
  EXPECT_EQ(Classes(*r, 0), "df");  // X passed from head, V free
  EXPECT_EQ(Classes(*r, 1), "fc");
  EXPECT_EQ(Classes(*r, 2), "f");
  for (const auto& arc : r->arcs) EXPECT_TRUE(arc.empty());
}

TEST(QualTreeSipsTest, R2UsesQualTreeOrder) {
  // Example 4.2: directing the R2 qual tree away from the root gives
  // the strategy of Example 4.1: a first, then {b, c} independently,
  // then their subtrees.
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeQualTreeStrategy()->Classify(unit->program.rules()[0], Df(),
                                            unit->program);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->order.size(), 5u);
  EXPECT_EQ(r->order[0], 0u);  // a first
  // b and c (indexes 1, 2) precede d and e (indexes 3, 4).
  std::vector<size_t> mid{r->order[1], r->order[2]};
  std::sort(mid.begin(), mid.end());
  EXPECT_EQ(mid, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(Classes(*r, 0), "dff");  // a(X^d, Y^f, V^f)
  EXPECT_EQ(Classes(*r, 1), "df");   // b(Y^d, U^f)
  EXPECT_EQ(Classes(*r, 2), "df");   // c(V^d, T^f)
  EXPECT_EQ(Classes(*r, 3), "d");    // d(T^d)
  EXPECT_EQ(Classes(*r, 4), "df");   // e(U^d, Z^f)
}

TEST(QualTreeSipsTest, FailsOnR3WithoutFallback) {
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeQualTreeStrategy()->Classify(unit->program.rules()[0], Df(),
                                            unit->program);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QualTreeSipsTest, FallbackHandlesR3) {
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeQualTreeOrGreedyStrategy()->Classify(unit->program.rules()[0],
                                                    Df(), unit->program);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order.size(), 5u);
  EXPECT_EQ(r->order[0], 0u);  // greedy still starts at a
}

TEST(QualTreeSipsTest, GreedyTheoremHolds) {
  // Theorem 4.1: the qual-tree order is greedy — at each step the
  // chosen subgoal has maximal bound-argument count among remaining
  // subgoals (we verify the defining property directly).
  auto unit =
      Parse("p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules()[0];
  auto r = MakeQualTreeStrategy()->Classify(rule, Df(), unit->program);
  ASSERT_TRUE(r.ok());

  std::set<VariableId> bound;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    if (rule.head.args[i].is_variable() && IsBound(Df()[i])) {
      bound.insert(rule.head.args[i].var());
    }
  }
  std::set<size_t> remaining;
  for (size_t i = 0; i < rule.body.size(); ++i) remaining.insert(i);
  auto bound_count = [&](size_t k) {
    size_t n = 0;
    for (const Term& t : rule.body[k].args) {
      if (t.is_constant() || bound.count(t.var()) != 0) ++n;
    }
    return n;
  };
  for (size_t k : r->order) {
    size_t chosen = bound_count(k);
    // No remaining subgoal adjacent to the bound set may have strictly
    // more bound arguments.
    for (size_t other : remaining) {
      EXPECT_LE(bound_count(other), chosen)
          << "subgoal " << other << " had more bound args than " << k;
    }
    remaining.erase(k);
    for (const Term& t : rule.body[k].args) {
      if (t.is_variable()) bound.insert(t.var());
    }
  }
}

TEST(SipsResultTest, ToStringShowsAdornedChain) {
  auto unit = Parse("p(X, Y) :- p(X, V), q(V, W), p(W, Y).");
  ASSERT_TRUE(unit.ok());
  auto r = MakeGreedyStrategy()->Classify(unit->program.rules()[0], Df(),
                                          unit->program);
  ASSERT_TRUE(r.ok());
  std::string s = r->ToString(unit->program.rules()[0], unit->program);
  EXPECT_NE(s.find("p("), std::string::npos);
  EXPECT_NE(s.find("^d"), std::string::npos);
  EXPECT_NE(s.find(" -> "), std::string::npos);
}

TEST(StrategyFactoryTest, AllNamesResolve) {
  for (const char* name : {"greedy", "left_to_right", "qual_tree",
                           "qual_tree_or_greedy", "no_sips"}) {
    auto s = MakeStrategyByName(name);
    ASSERT_TRUE(s.ok()) << name;
    EXPECT_EQ((*s)->name(), name);
  }
  EXPECT_FALSE(MakeStrategyByName("bogus").ok());
}

TEST(AdornmentTest, RoundTrip) {
  auto a = AdornmentFromString("cdef");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(AdornmentToString(*a), "cdef");
  EXPECT_FALSE(AdornmentFromString("cdx").ok());
  EXPECT_EQ(BoundPositions(*a), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(PositionsWithClass(*a, BindingClass::kExistential),
            (std::vector<size_t>{2}));
}

}  // namespace
}  // namespace mpqe
