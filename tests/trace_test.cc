// Tests for the message trace recorder.

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "engine/trace.h"

namespace mpqe {
namespace {

constexpr const char* kTc = R"(
  edge(1, 2). edge(2, 3).
  tc(X, Y) :- edge(X, Y).
  tc(X, Y) :- edge(X, Z), tc(Z, Y).
  ?- tc(1, W).
)";

TEST(TraceTest, RecordsEverySend) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  MessageTrace trace(/*capacity=*/0);
  EvaluationOptions options;
  options.observers.push_back(&trace);
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(trace.total_seen(), result->message_stats.Total());
  EXPECT_EQ(trace.Entries().size(), trace.total_seen());

  // Entries are in send order with consecutive sequence numbers.
  auto entries = trace.Entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].sequence, i);
  }
  // The first send is the sink's relation request to the root.
  EXPECT_EQ(entries[0].message.kind, MessageKind::kRelationRequest);
  // The last computation message to the sink is the top-level end.
  bool saw_top_end = false;
  for (const TraceEntry& e : entries) {
    if (e.message.kind == MessageKind::kEnd &&
        e.to == entries[0].message.from) {
      saw_top_end = true;
    }
  }
  EXPECT_TRUE(saw_top_end);
}

TEST(TraceTest, CapacityEvictsOldest) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  MessageTrace trace(/*capacity=*/10);
  EvaluationOptions options;
  options.observers.push_back(&trace);
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  auto entries = trace.Entries();
  ASSERT_EQ(entries.size(), 10u);
  EXPECT_EQ(entries.back().sequence, trace.total_seen() - 1);
  EXPECT_EQ(entries.front().sequence, trace.total_seen() - 10);
}

TEST(TraceTest, EntriesForFiltersByEndpoint) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  MessageTrace trace(0);
  EvaluationOptions options;
  options.observers.push_back(&trace);
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  ProcessId sink = trace.Entries()[0].message.from;
  auto sink_entries = trace.EntriesFor(sink);
  EXPECT_FALSE(sink_entries.empty());
  for (const TraceEntry& e : sink_entries) {
    EXPECT_TRUE(e.from == sink || e.to == sink);
  }
  EXPECT_LT(sink_entries.size(), trace.Entries().size());
}

TEST(TraceTest, ToStringResolvesLabels) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  ASSERT_TRUE(unit->program.Validate(&unit->database).ok());
  auto strategy = MakeGreedyStrategy();
  auto graph = RuleGoalGraph::Build(unit->program, *strategy);
  ASSERT_TRUE(graph.ok());

  MessageTrace trace(0);
  EvaluationOptions options;
  options.observers.push_back(&trace);
  auto result = EvaluateWithGraph(**graph, unit->database, options);
  ASSERT_TRUE(result.ok());

  std::string text = trace.ToString(graph->get(), &unit->database.symbols());
  EXPECT_NE(text.find("sink"), std::string::npos);
  EXPECT_NE(text.find("tc("), std::string::npos);
  EXPECT_NE(text.find("tuple_request"), std::string::npos);
  EXPECT_NE(text.find("=>"), std::string::npos);
}

TEST(TraceTest, ClearResetsEntriesNotCount) {
  MessageTrace trace(0);
  Message m = MakeEnd({});
  m.from = 1;
  SendEvent event;
  event.from = m.from;
  event.message = &m;
  event.to = 2;
  trace.OnSend(event);
  event.to = 3;
  trace.OnSend(event);
  EXPECT_EQ(trace.Entries().size(), 2u);
  trace.Clear();
  EXPECT_EQ(trace.Entries().size(), 0u);
  EXPECT_EQ(trace.total_seen(), 2u);
}

}  // namespace
}  // namespace mpqe
