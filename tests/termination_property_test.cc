// Properties of the Fig. 2 distributed termination protocol
// (Theorem 3.1): under deterministic, random, and threaded schedules
// the leader's `end` must arrive exactly when the computation is
// finished — never early (answers would be lost), never withheld (the
// run would only finish by the quiescence oracle, not by protocol).

#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "common/random.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

struct Workload {
  std::string name;
  Program program;
  Database db;
};

// Builds a recursive workload with a given EDB shape.
Workload MakeWorkload(const std::string& shape, int64_t n, uint64_t seed) {
  Workload w;
  w.name = StrCat(shape, "/", n);
  if (shape == "chain") {
    EXPECT_TRUE(workload::MakeChain(w.db, "edge", n).ok());
  } else if (shape == "cycle") {
    EXPECT_TRUE(workload::MakeCycle(w.db, "edge", n).ok());
  } else if (shape == "tree") {
    EXPECT_TRUE(workload::MakeBinaryTree(w.db, "edge", n).ok());
  } else {
    Rng rng(seed);
    EXPECT_TRUE(workload::MakeRandomGraph(w.db, "edge", n, 2, rng).ok());
  }
  EXPECT_TRUE(
      ParseInto(workload::NonlinearTcProgram(0), w.program, w.db).ok());
  return w;
}

Relation Truth(const std::string& shape, int64_t n, uint64_t seed) {
  Workload w = MakeWorkload(shape, n, seed);
  auto truth = SemiNaiveBottomUp(w.program, w.db);
  EXPECT_TRUE(truth.ok());
  return truth->goal;
}

class TerminationUnderSchedules
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(TerminationUnderSchedules, ProtocolEndsExactlyOnCompletion) {
  const auto& [shape, seed] = GetParam();
  const int64_t n = 12;
  Relation truth = Truth(shape, n, seed);

  Workload w = MakeWorkload(shape, n, seed);
  EvaluationOptions options;
  options.scheduler = SchedulerKind::kRandom;
  options.seed = seed;
  options.max_messages = 5000000;
  auto result = Evaluate(w.program, w.db, options);
  ASSERT_TRUE(result.ok()) << w.name << ": " << result.status();

  // Not withheld: the run finished because the protocol said so.
  EXPECT_TRUE(result->ended_by_protocol) << w.name;
  // Not early: the answers are complete.
  EXPECT_TRUE(result->answers == truth) << w.name;
  // The protocol actually ran (the query is recursive).
  EXPECT_GT(result->counters.protocol_waves, 0u) << w.name;
  EXPECT_GT(result->message_stats.Count(MessageKind::kEndRequest), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TerminationUnderSchedules,
    ::testing::Combine(::testing::Values("chain", "cycle", "tree", "random"),
                       ::testing::Range(uint64_t{0}, uint64_t{12})));

TEST(TerminationProtocolTest, DeterministicQuiescenceOracleAgrees) {
  // With the deterministic scheduler we can also check the oracle side
  // of Theorem 3.1: when the sink's end arrives the whole network
  // drains with no further computation messages.
  Workload w = MakeWorkload("cycle", 16, 0);
  auto result = Evaluate(w.program, w.db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ended_by_protocol);
  EXPECT_TRUE(result->quiescent_after);
}

TEST(TerminationProtocolTest, ConfirmRequiresTwoIdleWaves) {
  // Every end_confirmed implies idleness >= 2, so there must be at
  // least two end_request waves before conclusion; end_negative
  // appears at least once (the first wave's leaves always answer
  // negative).
  Workload w = MakeWorkload("chain", 10, 0);
  auto result = Evaluate(w.program, w.db);
  ASSERT_TRUE(result.ok());
  const MessageStats& stats = result->message_stats;
  EXPECT_GE(result->counters.protocol_waves, 2u);
  EXPECT_GT(stats.Count(MessageKind::kEndNegative), 0u);
  EXPECT_GT(stats.Count(MessageKind::kEndConfirmed), 0u);
  EXPECT_GE(stats.Count(MessageKind::kEndRequest),
            stats.Count(MessageKind::kEndConfirmed));
}

TEST(TerminationProtocolTest, ThreadedSchedulesAcrossWorkerCounts) {
  Relation truth = Truth("random", 16, 3);
  for (int workers : {1, 2, 4, 8}) {
    Workload w = MakeWorkload("random", 16, 3);
    EvaluationOptions options;
    options.scheduler = SchedulerKind::kThreaded;
    options.workers = workers;
    options.max_messages = 5000000;
    auto result = Evaluate(w.program, w.db, options);
    ASSERT_TRUE(result.ok()) << workers << ": " << result.status();
    EXPECT_TRUE(result->ended_by_protocol) << workers;
    EXPECT_TRUE(result->answers == truth) << workers << " workers";
  }
}

TEST(TerminationProtocolTest, RepeatedRandomSchedulesConverge) {
  Relation truth = Truth("cycle", 9, 0);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Workload w = MakeWorkload("cycle", 9, 0);
    EvaluationOptions options;
    options.scheduler = SchedulerKind::kRandom;
    options.seed = seed;
    options.max_messages = 5000000;
    auto result = Evaluate(w.program, w.db, options);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_TRUE(result->ended_by_protocol) << "seed " << seed;
    EXPECT_TRUE(result->answers == truth) << "seed " << seed;
  }
}

TEST(TerminationProtocolTest, MutualRecursionScc) {
  // even/odd: one SCC containing two goal nodes and their rule nodes.
  auto unit = Parse(R"(
    zero(0).
    succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4). succ(4, 5).
    succ(5, 6). succ(6, 7). succ(7, 8). succ(8, 9).
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    ?- even(N).
  )");
  ASSERT_TRUE(unit.ok());
  for (uint64_t seed = 0; seed < 10; ++seed) {
    EvaluationOptions options;
    options.scheduler = SchedulerKind::kRandom;
    options.seed = seed;
    auto result = Evaluate(unit->program, unit->database, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->ended_by_protocol);
    EXPECT_EQ(result->answers.size(), 5u) << "seed " << seed;  // 0,2,4,6,8
  }
}

TEST(TerminationProtocolTest, NestedSccsEndInOrder) {
  // P1 produces two nested strong components (the p^cf component feeds
  // on the p^df component); both must conclude.
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "q", 8).ok());
  ASSERT_TRUE(workload::MakeChain(db, "r", 8).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::P1Program(0), program, db).ok());
  auto result = Evaluate(program, db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ended_by_protocol);
  EXPECT_EQ(result->graph_stats.nontrivial_sccs, 2u);
  // Both leaders ran waves.
  EXPECT_GE(result->counters.protocol_waves, 4u);
}

}  // namespace
}  // namespace mpqe
