// Tests for the per-node counter breakdown.

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "engine/evaluator.h"

namespace mpqe {
namespace {

TEST(NodeCountersTest, EmptyUnlessRequested) {
  auto unit = Parse(R"(
    e(1, 2).
    p(X, Y) :- e(X, Y).
    ?- p(1, W).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = Evaluate(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->node_counters.empty());
}

TEST(NodeCountersTest, RowsSumToAggregate) {
  auto unit = Parse(R"(
    edge(1, 2). edge(2, 3). edge(3, 4).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(unit.ok());
  EvaluationOptions options;
  options.collect_node_counters = true;
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->node_counters.size(), result->graph_stats.node_count);

  uint64_t stored = 0, drops = 0, contexts = 0, waves = 0;
  for (const NodeCounters& row : result->node_counters) {
    stored += row.counters.stored_tuples;
    drops += row.counters.duplicate_drops;
    contexts += row.counters.contexts;
    waves += row.counters.protocol_waves;
  }
  EXPECT_EQ(stored, result->counters.stored_tuples);
  EXPECT_EQ(drops, result->counters.duplicate_drops);
  EXPECT_EQ(contexts, result->counters.contexts);
  EXPECT_EQ(waves, result->counters.protocol_waves);
}

TEST(NodeCountersTest, HotNodesShowUp) {
  auto unit = Parse(R"(
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(unit.ok());
  EvaluationOptions options;
  options.collect_node_counters = true;
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  // At least one node stored multiple tuples (the recursive tc node).
  bool hot = false;
  for (const NodeCounters& row : result->node_counters) {
    if (row.counters.stored_tuples >= 4) hot = true;
  }
  EXPECT_TRUE(hot);
}

}  // namespace
}  // namespace mpqe
