// Tests for the tabled top-down baseline: terminates where plain SLD
// diverges, matches semi-naive answers, and stays goal-directed
// (tables ~= relevant call patterns only).

#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "baseline/tabled_top_down.h"
#include "baseline/top_down_sld.h"
#include "common/random.h"
#include "datalog/parser.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

Tuple T1(int64_t a) { return {Value::Int(a)}; }

TEST(TabledTest, LinearTransitiveClosure) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 10).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  auto result = TabledTopDown(program, db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 9u);
  EXPECT_TRUE(result->answers.Contains(T1(9)));
}

TEST(TabledTest, LeftRecursionTerminates) {
  // The case that sinks plain SLD (see TopDownSldTest).
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 12).ok());
  Program program;
  ASSERT_TRUE(
      ParseInto(workload::LeftRecursiveTcProgram(0), program, db).ok());
  auto result = TabledTopDown(program, db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 11u);
}

TEST(TabledTest, CyclicDataTerminates) {
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 7).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());
  auto result = TabledTopDown(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 7u);
}

TEST(TabledTest, NonlinearRecursion) {
  Database db;
  ASSERT_TRUE(workload::MakeChain(db, "edge", 9).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
  auto result = TabledTopDown(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 8u);
}

TEST(TabledTest, GoalDirectedTableCount) {
  // tc(5, W) on a chain: tables only materialize for suffix call
  // patterns, far fewer derived tuples than the whole closure.
  Database db1, db2;
  ASSERT_TRUE(workload::MakeChain(db1, "edge", 40).ok());
  ASSERT_TRUE(workload::MakeChain(db2, "edge", 40).ok());
  Program p1, p2;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(20), p1, db1).ok());
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(20), p2, db2).ok());
  auto tabled = TabledTopDown(p1, db1);
  auto whole = SemiNaiveBottomUp(p2, db2);
  ASSERT_TRUE(tabled.ok());
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(tabled->answers == whole->goal);
  EXPECT_LT(tabled->derived * 2, whole->total_derived);
}

TEST(TabledTest, MutualRecursion) {
  auto unit = Parse(R"(
    zero(0).
    succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4). succ(4, 5).
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    ?- even(N).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = TabledTopDown(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 3u);
}

TEST(TabledTest, SameGenerationBound) {
  auto unit = Parse(R"(
    person(a). person(b). person(c). person(d).
    par(b, a). par(c, a). par(d, b).
    sg(X, X) :- person(X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
    ?- sg(b, W).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = TabledTopDown(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 2u);
}

TEST(TabledTest, RepeatedVariablesAndConstants) {
  auto unit = Parse(R"(
    e(1, 1). e(1, 2). e(2, 2). e(3, 3).
    loopy(X) :- e(X, X).
    pair(X) :- loopy(X), e(X, 2).
    ?- pair(W).
  )");
  ASSERT_TRUE(unit.ok());
  auto result = TabledTopDown(unit->program, unit->database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 2u);
}

class TabledEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TabledEquivalence, MatchesSemiNaive) {
  Rng rng(GetParam() + 4000);
  workload::RandomProgramOptions options;
  auto rp = workload::MakeRandomProgram(options, rng);
  ASSERT_TRUE(rp.ok());
  auto truth = SemiNaiveBottomUp(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(truth.ok());
  auto tabled = TabledTopDown(rp->unit.program, rp->unit.database);
  ASSERT_TRUE(tabled.ok()) << tabled.status() << "\n" << rp->text;
  EXPECT_TRUE(tabled->answers == truth->goal)
      << rp->text << "\ntabled: " << tabled->answers.ToString()
      << "\ntruth:  " << truth->goal.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TabledEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

}  // namespace
}  // namespace mpqe
