// Tests for the execution observability subsystem (src/obs/): the
// ExecutionObserver callback contract (including its threading
// guarantees under the threaded scheduler), the metrics registry, and
// the Chrome-trace exporter (golden summary + structural checks).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "engine/evaluator.h"
#include "obs/logging_observer.h"
#include "obs/metrics.h"
#include "obs/trace_exporter.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

constexpr const char* kTc = R"(
  edge(1, 2). edge(2, 3).
  tc(X, Y) :- edge(X, Y).
  tc(X, Y) :- edge(X, Z), tc(Z, Y).
  ?- tc(1, W).
)";

// ---------------------------------------------------------------------------
// Counter / Histogram / MetricsRegistry

TEST(MetricsTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, HistogramStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  for (uint64_t v : {1u, 2u, 4u, 100u, 1000u}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1107u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1107.0 / 5.0);
  // Percentiles report log2-bucket upper bounds.
  EXPECT_GE(h.Percentile(100.0), 1000u);
  EXPECT_LE(h.Percentile(0.0), 1u);
}

// Regression: every statistic on an empty histogram must be a defined
// zero, not rank arithmetic on count 0 (ToString/ToJson format empty
// histograms for every run that records no samples).
TEST(MetricsTest, EmptyHistogramStatisticsAreDefined) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(50.0), 0u);
  EXPECT_EQ(h.Percentile(95.0), 0u);
  EXPECT_EQ(h.Percentile(100.0), 0u);
  // Out-of-range and NaN percentiles are clamped, never UB.
  EXPECT_EQ(h.Percentile(-5.0), 0u);
  EXPECT_EQ(h.Percentile(200.0), 0u);
  EXPECT_EQ(h.Percentile(std::nan("")), 0u);
  h.Record(8);
  EXPECT_EQ(h.Percentile(std::nan("")), h.Percentile(0.0));
  std::string line = h.ToString();
  EXPECT_NE(line.find("count=1"), std::string::npos);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  a.Increment(3);
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  registry.GetHistogram("h").Record(7);
  EXPECT_EQ(registry.GetHistogram("h").count(), 1u);
  EXPECT_NE(registry.ToString().find("x=3"), std::string::npos);
  registry.Clear();
  EXPECT_TRUE(registry.CounterRows().empty());
}

TEST(MetricsTest, RegistryJsonIsWellFormedish) {
  MetricsRegistry registry;
  registry.GetCounter("a/b").Increment(5);
  registry.GetHistogram("lat").Record(10);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a/b\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  while (!json.empty() && json.back() == '\n') json.pop_back();
  EXPECT_EQ(json.back(), '}');
}

// ---------------------------------------------------------------------------
// Evaluation-level metrics plumbing

TEST(MetricsObserverTest, EvaluationFillsRegistry) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  MetricsRegistry registry;
  EvaluationOptions options;
  options.metrics = &registry;
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());

  // Live per-event metrics.
  uint64_t sent = 0;
  for (const auto& [name, value] : registry.CounterRows()) {
    if (name.rfind("msg/sent/", 0) == 0) sent += value;
  }
  EXPECT_EQ(sent, result->message_stats.Total());
  EXPECT_EQ(registry.GetCounter("msg/delivered").value(), result->delivered);
  EXPECT_GT(registry.GetCounter("node/fires").value(), 0u);
  EXPECT_EQ(registry.GetHistogram("msg/handle_ns").count(),
            result->delivered);

  // End-of-run dumps.
  EXPECT_EQ(registry.GetCounter("run/answers").value(),
            result->answers.size());
  EXPECT_EQ(registry.GetCounter("engine/stored_tuples").value(),
            result->counters.stored_tuples);
  EXPECT_GT(registry.GetCounter("predicate/tc/stored_tuples").value(), 0u);

  // Every phase ran exactly once.
  for (const char* phase :
       {"adornment", "graph_build", "network_wiring", "run", "drain"}) {
    EXPECT_EQ(registry.GetHistogram(StrCat("phase/", phase, "/ns")).count(),
              1u)
        << phase;
  }
}

TEST(MetricsObserverTest, PerArcCountersMatchTotals) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  MetricsRegistry registry;
  EvaluationOptions options;
  options.metrics = &registry;
  options.metrics_per_arc = true;
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  uint64_t arc_total = 0;
  bool saw_arc = false;
  for (const auto& [name, value] : registry.CounterRows()) {
    if (name.rfind("arc/", 0) == 0) {
      saw_arc = true;
      arc_total += value;
    }
  }
  EXPECT_TRUE(saw_arc);
  EXPECT_EQ(arc_total, result->message_stats.Total());
}

// ---------------------------------------------------------------------------
// Callback ordering contract

// Records phase begin/end events; they arrive strictly in evaluator
// order and properly nested (begin before end, one pair per phase).
class PhaseRecorder : public ExecutionObserver {
 public:
  void OnPhase(const PhaseEvent& event) override {
    log_.push_back({event.phase, event.begin});
  }
  const std::vector<std::pair<Phase, bool>>& log() const { return log_; }

 private:
  std::vector<std::pair<Phase, bool>> log_;
};

TEST(ObserverTest, PhasesArriveInOrder) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  PhaseRecorder recorder;
  EvaluationOptions options;
  options.observers.push_back(&recorder);
  ASSERT_TRUE(Evaluate(unit->program, unit->database, options).ok());
  std::vector<std::pair<Phase, bool>> expected = {
      {Phase::kAdornment, true},     {Phase::kAdornment, false},
      {Phase::kGraphBuild, true},    {Phase::kGraphBuild, false},
      {Phase::kNetworkWiring, true}, {Phase::kNetworkWiring, false},
      {Phase::kRun, true},           {Phase::kRun, false},
      {Phase::kDrain, true},         {Phase::kDrain, false},
  };
  EXPECT_EQ(recorder.log(), expected);
}

// Checks the documented threading contract while an evaluation runs:
//  * OnDeliver / OnNodeFire for one process never overlap (the
//    network serializes each process);
//  * for every (from, to) channel, the i-th OnSend precedes the i-th
//    OnDeliver (send happens-before delivery).
class ContractMonitor : public ExecutionObserver {
 public:
  void OnSend(const SendEvent& event) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++sends_[{event.from, event.to}];
  }

  void OnDeliver(const DeliverEvent& event) override {
    EnterSerialized(event.to);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      uint64_t index = delivers_[{event.from, event.to}]++;
      if (index >= sends_[{event.from, event.to}]) {
        ++order_violations_;
      }
    }
    LeaveSerialized(event.to);
  }

  void OnNodeFire(const NodeFireEvent& event) override {
    EnterSerialized(event.pid);
    LeaveSerialized(event.pid);
  }

  uint64_t serialization_violations() const {
    return serialization_violations_.load();
  }
  uint64_t order_violations() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_violations_;
  }
  uint64_t total_delivers() const {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto& [channel, count] : delivers_) total += count;
    return total;
  }

 private:
  void EnterSerialized(ProcessId pid) {
    ASSERT_LT(static_cast<size_t>(pid), in_callback_.size());
    int expected = 0;
    if (!in_callback_[pid].compare_exchange_strong(expected, 1)) {
      ++serialization_violations_;
    }
  }
  void LeaveSerialized(ProcessId pid) { in_callback_[pid].store(0); }

  mutable std::mutex mutex_;
  std::map<std::pair<ProcessId, ProcessId>, uint64_t> sends_;
  std::map<std::pair<ProcessId, ProcessId>, uint64_t> delivers_;
  uint64_t order_violations_ = 0;
  std::array<std::atomic<int>, 256> in_callback_{};
  std::atomic<uint64_t> serialization_violations_{0};
};

TEST(ObserverTest, ThreadedSchedulerHonorsContract) {
  for (int round = 0; round < 3; ++round) {
    Database db;
    ASSERT_TRUE(workload::MakeCycle(db, "edge", 12).ok());
    Program program;
    ASSERT_TRUE(ParseInto(workload::NonlinearTcProgram(0), program, db).ok());
    ContractMonitor monitor;
    EvaluationOptions options;
    options.scheduler = SchedulerKind::kThreaded;
    options.workers = 4;
    options.max_messages = 1000000;
    options.observers.push_back(&monitor);
    auto result = Evaluate(program, db, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GT(monitor.total_delivers(), 0u);
    EXPECT_EQ(monitor.serialization_violations(), 0u) << "round " << round;
    EXPECT_EQ(monitor.order_violations(), 0u) << "round " << round;
  }
}

// Counts every callback kind; used to check composition order.
class CountingObserver : public ExecutionObserver {
 public:
  explicit CountingObserver(std::vector<int>* order, int id)
      : order_(order), id_(id) {}
  void OnSend(const SendEvent&) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++sends_;
    if (order_ != nullptr && sends_ == 1) order_->push_back(id_);
  }
  uint64_t sends() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sends_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<int>* order_;
  int id_;
  uint64_t sends_ = 0;
};

TEST(ObserverTest, ObserversComposeInRegistrationOrder) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  std::vector<int> first_event_order;
  CountingObserver a(&first_event_order, 1);
  CountingObserver b(&first_event_order, 2);
  EvaluationOptions options;
  options.observers.push_back(&a);
  options.observers.push_back(&b);
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(a.sends(), result->message_stats.Total());
  EXPECT_EQ(a.sends(), b.sends());
  EXPECT_EQ(first_event_order, (std::vector<int>{1, 2}));
}

TEST(ObserverTest, TerminationEventsOnCyclicWorkload) {
  Database db;
  ASSERT_TRUE(workload::MakeCycle(db, "edge", 8).ok());
  Program program;
  ASSERT_TRUE(ParseInto(workload::LinearTcProgram(0), program, db).ok());

  class TerminationRecorder : public ExecutionObserver {
   public:
    void OnTermination(const TerminationEvent& event) override {
      ++by_kind_[static_cast<size_t>(event.kind)];
    }
    uint64_t count(TerminationEvent::Kind kind) const {
      return by_kind_[static_cast<size_t>(kind)];
    }

   private:
    std::array<uint64_t,
               static_cast<size_t>(TerminationEvent::Kind::kKindCount)>
        by_kind_{};
  } recorder;

  EvaluationOptions options;
  options.observers.push_back(&recorder);
  auto result = Evaluate(program, db, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->ended_by_protocol);
  EXPECT_GT(recorder.count(TerminationEvent::Kind::kWaveStarted), 0u);
  EXPECT_GT(recorder.count(TerminationEvent::Kind::kConcluded), 0u);
  EXPECT_EQ(recorder.count(TerminationEvent::Kind::kWaveStarted),
            result->counters.protocol_waves);
}

// ---------------------------------------------------------------------------
// Trace exporter

TEST(TraceExporterTest, StructurallySoundJson) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  TraceExporter exporter;
  EvaluationOptions options;
  options.observers.push_back(&exporter);
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(exporter.event_count(), 0u);
  EXPECT_EQ(exporter.dropped_events(), 0u);

  std::string json = exporter.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("phase:run"), std::string::npos);
  EXPECT_NE(json.find("msg:relation_request"), std::string::npos);
  // Flow starts and ends pair up (every send is delivered).
  size_t starts = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\": \"s\"", pos)) != std::string::npos) {
    ++starts;
    ++pos;
  }
  pos = 0;
  while ((pos = json.find("\"ph\": \"f\"", pos)) != std::string::npos) {
    ++ends;
    ++pos;
  }
  EXPECT_EQ(starts, result->message_stats.Total());
  EXPECT_EQ(starts, ends);
}

TEST(TraceExporterTest, MaxEventsDropsInsteadOfGrowing) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  TraceExporter::Options trace_options;
  trace_options.max_events = 5;
  TraceExporter exporter(trace_options);
  EvaluationOptions options;
  options.observers.push_back(&exporter);
  ASSERT_TRUE(Evaluate(unit->program, unit->database, options).ok());
  EXPECT_EQ(exporter.event_count(), 5u);
  EXPECT_GT(exporter.dropped_events(), 0u);
}

// The normalized (timestamp-free) trace of a tiny fixed query under
// the deterministic scheduler is bit-for-bit reproducible; the golden
// file pins the exporter's event stream. Regenerate with
//   MPQE_REGEN_GOLDEN=1 ./obs_test --gtest_filter='*GoldenSummary*'
TEST(TraceExporterTest, GoldenSummaryForTinyQuery) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  TraceExporter exporter;
  EvaluationOptions options;  // deterministic scheduler
  options.observers.push_back(&exporter);
  ASSERT_TRUE(Evaluate(unit->program, unit->database, options).ok());
  std::string summary = exporter.NormalizedSummary();
  ASSERT_FALSE(summary.empty());

  const std::string path =
      std::string(MPQE_TESTDATA_DIR) + "/trace_summary_tc.golden";
  if (std::getenv("MPQE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << summary;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with MPQE_REGEN_GOLDEN=1 to create)";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(summary, golden.str());
}

TEST(TraceExporterTest, WriteFileRejectsBadPath) {
  TraceExporter exporter;
  Status status = exporter.WriteFile("/nonexistent-dir/trace.json");
  EXPECT_FALSE(status.ok());
}

// ---------------------------------------------------------------------------
// Event-name tables

// ---------------------------------------------------------------------------
// LoggingObserver (engine log lines)

TEST(LoggingObserverTest, EmitsLeveledThreadTaggedLines) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  std::ostringstream log;
  LoggingObserver logger(LogLevel::kInfo, &log);
  EvaluationOptions options;
  options.observers.push_back(&logger);
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok());
  std::string text = log.str();
  EXPECT_NE(text.find("[INFO"), std::string::npos);
  EXPECT_NE(text.find("engine] phase run begin"), std::string::npos);
  EXPECT_NE(text.find("engine] phase run end"), std::string::npos);
  // Fig. 2 waves on the cyclic tc SCC.
  EXPECT_NE(text.find("wave 1 started"), std::string::npos);
  EXPECT_NE(text.find("concluded"), std::string::npos);
  // INFO filtering: the per-node protocol answers are DEBUG-only.
  EXPECT_EQ(text.find("end_confirmed"), std::string::npos);
}

TEST(LoggingObserverTest, DebugLevelAddsProtocolAnswers) {
  auto unit = Parse(kTc);
  ASSERT_TRUE(unit.ok());
  std::ostringstream log;
  LoggingObserver logger(LogLevel::kDebug, &log);
  EvaluationOptions options;
  options.observers.push_back(&logger);
  ASSERT_TRUE(Evaluate(unit->program, unit->database, options).ok());
  EXPECT_NE(log.str().find("end_confirmed"), std::string::npos);
}

TEST(LoggingObserverTest, LevelNamesResolve) {
  auto level = EngineLogLevelFromName("debug");
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(**level, LogLevel::kDebug);
  auto off = EngineLogLevelFromName("off");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->has_value());
  auto empty = EngineLogLevelFromName("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
  EXPECT_FALSE(EngineLogLevelFromName("verbose").ok());
  // An explicit bad level is a Validate-time configuration error.
  EvaluationOptions options;
  options.log_level = "verbose";
  EXPECT_FALSE(options.Validate().ok());
  options.log_level = "info";
  options.progress_interval_ms = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ObserverTest, EnumNamesAreStable) {
  EXPECT_STREQ(PhaseToString(Phase::kAdornment), "adornment");
  EXPECT_STREQ(PhaseToString(Phase::kDrain), "drain");
  EXPECT_STREQ(NodeRoleToString(NodeRole::kRule), "rule");
  EXPECT_STREQ(
      TerminationEvent::KindToString(TerminationEvent::Kind::kConcluded),
      "concluded");
}

}  // namespace
}  // namespace mpqe
