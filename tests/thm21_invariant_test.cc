// Theorem 2.1's structural invariants, checked directly on built
// graphs: along any root-to-leaf path of the (non-coalesced) graph no
// two goal nodes are variants with matching classes (otherwise a cycle
// edge would have stopped the expansion), which is what bounds path
// length and guarantees construction terminates.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datalog/parser.h"
#include "datalog/unify.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"
#include "workload/generators.h"

namespace mpqe {
namespace {

void CheckNoVariantPairOnAnyPath(const RuleGoalGraph& graph) {
  // For every goal node, walk its ancestor chain: no ancestor goal node
  // may be a variant with equal adornment.
  for (const GraphNode& n : graph.nodes()) {
    if (n.kind != NodeKind::kGoal) continue;
    for (NodeId up = n.parent; up != kNoNode;) {
      const GraphNode& rule_node = graph.node(up);
      NodeId ancestor_id = rule_node.parent;
      if (ancestor_id == kNoNode) break;
      const GraphNode& ancestor = graph.node(ancestor_id);
      if (ancestor.kind == NodeKind::kGoal) {
        bool variant = ancestor.adornment == n.adornment &&
                       IsVariant(ancestor.atom, n.atom);
        EXPECT_FALSE(variant)
            << "expanded goal node " << graph.NodeLabel(n.id)
            << " duplicates ancestor " << graph.NodeLabel(ancestor_id);
      }
      up = ancestor.parent;
    }
  }
}

TEST(Thm21InvariantTest, HoldsOnCanonicalPrograms) {
  const std::string programs[] = {
      workload::LinearTcProgram(0), workload::NonlinearTcProgram(0),
      workload::LeftRecursiveTcProgram(0), workload::P1Program(0),
      workload::SameGenerationProgram(0)};
  for (const std::string& text : programs) {
    Database db;
    ASSERT_TRUE(workload::MakeChain(db, "edge", 4).ok());
    ASSERT_TRUE(workload::MakeChain(db, "q", 4).ok());
    ASSERT_TRUE(workload::MakeChain(db, "r", 4).ok());
    ASSERT_TRUE(workload::MakeChain(db, "par", 4).ok());
    ASSERT_TRUE(db.InsertFact("person", {Value::Int(0)}).ok());
    Program program;
    ASSERT_TRUE(ParseInto(text, program, db).ok());
    ASSERT_TRUE(program.Validate(&db).ok());
    auto strategy = MakeGreedyStrategy();
    auto graph = RuleGoalGraph::Build(program, *strategy);
    ASSERT_TRUE(graph.ok()) << text;
    CheckNoVariantPairOnAnyPath(**graph);
  }
}

TEST(Thm21InvariantTest, HoldsOnRandomPrograms) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed + 40);
    workload::RandomProgramOptions options;
    auto rp = workload::MakeRandomProgram(options, rng);
    ASSERT_TRUE(rp.ok());
    ASSERT_TRUE(rp->unit.program.Validate(&rp->unit.database).ok());
    auto strategy = MakeGreedyStrategy();
    auto graph = RuleGoalGraph::Build(rp->unit.program, *strategy);
    if (!graph.ok()) continue;  // blow-up seeds covered elsewhere
    CheckNoVariantPairOnAnyPath(**graph);
  }
}

TEST(Thm21InvariantTest, EveryStrategyTerminatesConstruction) {
  // Termination holds for all strategies (Thm. 2.1 is strategy-
  // independent); left-recursive programs are the acid test.
  for (const char* name :
       {"greedy", "greedy_no_e", "left_to_right", "qual_tree_or_greedy",
        "no_sips"}) {
    Database db;
    ASSERT_TRUE(workload::MakeChain(db, "edge", 4).ok());
    Program program;
    ASSERT_TRUE(
        ParseInto(workload::LeftRecursiveTcProgram(0), program, db).ok());
    ASSERT_TRUE(program.Validate(&db).ok());
    auto strategy = MakeStrategyByName(name);
    ASSERT_TRUE(strategy.ok());
    auto graph = RuleGoalGraph::Build(program, **strategy);
    ASSERT_TRUE(graph.ok()) << name << ": " << graph.status();
    EXPECT_GT((*graph)->Stats().cycle_refs, 0u) << name;
  }
}

}  // namespace
}  // namespace mpqe
