// Tests for TSV import/export of EDB relations.

#include <gtest/gtest.h>

#include <sstream>

#include "relational/io.h"

namespace mpqe {
namespace {

TEST(IoTest, LoadsIntegerAndSymbolFields) {
  Database db;
  std::istringstream in("1\talice\n2\tbob\n-3\tcarol d\n");
  auto stats = LoadRelationTsv(db, "person", in);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows, 3u);
  EXPECT_EQ(stats->duplicates, 0u);
  const Relation* rel = db.GetRelation("person");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->arity(), 2u);
  EXPECT_TRUE(rel->Contains({Value::Int(1), db.Sym("alice")}));
  EXPECT_TRUE(rel->Contains({Value::Int(-3), db.Sym("carol d")}));
}

TEST(IoTest, SkipsCommentsAndBlankLines) {
  Database db;
  std::istringstream in("# header\n\n1\n# more\n2\n");
  auto stats = LoadRelationTsv(db, "n", in);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 2u);
  EXPECT_EQ(db.GetRelation("n")->arity(), 1u);
}

TEST(IoTest, MergesDuplicates) {
  Database db;
  std::istringstream in("1\t2\n1\t2\n3\t4\n");
  auto stats = LoadRelationTsv(db, "e", in);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 3u);
  EXPECT_EQ(stats->duplicates, 1u);
  EXPECT_EQ(db.GetRelation("e")->size(), 2u);
}

TEST(IoTest, RejectsRaggedRows) {
  Database db;
  std::istringstream in("1\t2\n1\n");
  auto stats = LoadRelationTsv(db, "e", in);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("line 2"), std::string::npos);
}

TEST(IoTest, RespectsExistingArity) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("e", 3).ok());
  std::istringstream in("1\t2\n");
  EXPECT_FALSE(LoadRelationTsv(db, "e", in).ok());
}

TEST(IoTest, HandlesWindowsLineEndings) {
  Database db;
  std::istringstream in("1\t2\r\n3\t4\r\n");
  auto stats = LoadRelationTsv(db, "e", in);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(db.GetRelation("e")->Contains({Value::Int(1), Value::Int(2)}));
}

TEST(IoTest, LeadingZerosStaySymbols) {
  // "007" is not a canonical integer rendering... we parse it as an
  // integer 7 by strtoll; accept that: assert it round-trips as 7.
  Database db;
  std::istringstream in("007\n");
  auto stats = LoadRelationTsv(db, "z", in);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(db.GetRelation("z")->Contains({Value::Int(7)}));
}

TEST(IoTest, SaveRoundTrips) {
  Database db;
  std::istringstream in("2\tbeta\n1\talpha\n");
  ASSERT_TRUE(LoadRelationTsv(db, "r", in).ok());
  std::ostringstream out;
  ASSERT_TRUE(
      SaveRelationTsv(*db.GetRelation("r"), db.symbols(), out).ok());
  EXPECT_EQ(out.str(), "1\talpha\n2\tbeta\n");  // sorted

  // Load the saved text into a fresh database: same relation.
  Database db2;
  std::istringstream in2(out.str());
  ASSERT_TRUE(LoadRelationTsv(db2, "r", in2).ok());
  EXPECT_EQ(db2.GetRelation("r")->size(), 2u);
  EXPECT_TRUE(db2.GetRelation("r")->Contains({Value::Int(1), db2.Sym("alpha")}));
}

TEST(IoTest, FileRoundTrip) {
  Database db;
  std::istringstream in("1\t2\n3\t4\n");
  ASSERT_TRUE(LoadRelationTsv(db, "edge", in).ok());
  std::string path = ::testing::TempDir() + "/mpqe_io_test.tsv";
  ASSERT_TRUE(
      SaveRelationTsvFile(*db.GetRelation("edge"), db.symbols(), path).ok());
  Database db2;
  auto stats = LoadRelationTsvFile(db2, "edge", path);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(db2.GetRelation("edge")->size(), 2u);
}

TEST(IoTest, MissingFileIsNotFound) {
  Database db;
  auto stats = LoadRelationTsvFile(db, "x", "/nonexistent/file.tsv");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, EmptyFieldIsSymbol) {
  Database db;
  std::istringstream in("\t1\n");
  auto stats = LoadRelationTsv(db, "e", in);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(db.GetRelation("e")->Contains({db.Sym(""), Value::Int(1)}));
}

}  // namespace
}  // namespace mpqe
