// Tests for rule/goal graph construction (§2), reproducing the
// structure of Fig. 1 for program P1 and checking Theorem 2.1, SCC
// analysis, BFST/leader designation, and the feeder relation.

#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"

namespace mpqe {
namespace {

constexpr const char* kP1 = R"(
  p(X, Y) :- p(X, V), q(V, W), p(W, Y).
  p(X, Y) :- r(X, Y).
  ?- p(a, Z).
)";

std::unique_ptr<RuleGoalGraph> BuildOrDie(const char* text,
                                          ParsedUnit& unit_out) {
  auto unit = Parse(text);
  EXPECT_TRUE(unit.ok()) << unit.status();
  unit_out = std::move(unit).value();
  EXPECT_TRUE(unit_out.program.Validate(&unit_out.database).ok());
  auto strategy = MakeGreedyStrategy();
  auto graph = RuleGoalGraph::Build(unit_out.program, *strategy);
  EXPECT_TRUE(graph.ok()) << graph.status();
  return std::move(graph).value();
}

// Counts nodes by kind and predicate+adornment signature.
std::multiset<std::string> GoalSignatures(const RuleGoalGraph& g) {
  std::multiset<std::string> sigs;
  for (const GraphNode& n : g.nodes()) {
    if (n.kind == NodeKind::kRule) continue;
    sigs.insert(StrCat(g.program().predicates().Name(n.atom.predicate), "^",
                       AdornmentToString(n.adornment), "/",
                       NodeKindToString(n.kind)));
  }
  return sigs;
}

TEST(RuleGoalGraphTest, P1MatchesFig1Structure) {
  ParsedUnit unit;
  auto graph = BuildOrDie(kP1, unit);

  GraphStats stats = graph->Stats();
  // Fig. 1 (plus the trivial goal/goal-rule levels the paper omits):
  //   goal^f -> rule -> p(a^c,Z^f)
  //   p(a^c,Z^f): recursive rule + base rule
  //     recursive: p(a^c,V^f)[cycle], q EDB, p(W^d,Z^f)
  //     base: r(a^c,Z^f) EDB
  //   p(W^d,Z^f): recursive rule + base rule
  //     recursive: p(W^d,V'^f)[cycle], q EDB, p(W'^d,Z^f)[cycle]
  //     base: r EDB
  EXPECT_EQ(stats.rule_nodes, 5u);   // goal rule + 2 rules per p node
  EXPECT_EQ(stats.cycle_refs, 3u);
  EXPECT_EQ(stats.edb_leaves, 4u);   // q x2, r x2
  EXPECT_EQ(stats.goal_nodes, 3u);   // goal, p(a^c,Z^f), p(W^d,Z^f)
  EXPECT_EQ(stats.node_count, 15u);

  std::multiset<std::string> sigs = GoalSignatures(*graph);
  EXPECT_EQ(sigs.count("p^cf/goal"), 1u);
  EXPECT_EQ(sigs.count("p^df/goal"), 1u);
  EXPECT_EQ(sigs.count("p^cf/cycle_ref"), 1u);
  EXPECT_EQ(sigs.count("p^df/cycle_ref"), 2u);
  EXPECT_EQ(sigs.count("q^df/edb"), 2u);
  EXPECT_EQ(sigs.count("r^cf/edb"), 1u);
  EXPECT_EQ(sigs.count("r^df/edb"), 1u);
}

TEST(RuleGoalGraphTest, P1SccsAndLeaders) {
  ParsedUnit unit;
  auto graph = BuildOrDie(kP1, unit);

  GraphStats stats = graph->Stats();
  EXPECT_EQ(stats.nontrivial_sccs, 2u);

  // Find the two p goal nodes.
  NodeId p_cf = kNoNode, p_df = kNoNode;
  for (const GraphNode& n : graph->nodes()) {
    if (n.kind != NodeKind::kGoal) continue;
    std::string name = graph->program().predicates().Name(n.atom.predicate);
    if (name != "p") continue;
    if (AdornmentToString(n.adornment) == "cf") p_cf = n.id;
    if (AdornmentToString(n.adornment) == "df") p_df = n.id;
  }
  ASSERT_NE(p_cf, kNoNode);
  ASSERT_NE(p_df, kNoNode);

  // Both p goal nodes lead their components.
  EXPECT_TRUE(graph->node(p_cf).is_leader);
  EXPECT_TRUE(graph->node(p_df).is_leader);
  EXPECT_NE(graph->node(p_cf).scc_id, graph->node(p_df).scc_id);

  // p^cf's SCC: goal + recursive rule + 1 cycle ref = 3 members.
  EXPECT_EQ(graph->scc_members(graph->node(p_cf).scc_id).size(), 3u);
  // p^df's SCC: goal + recursive rule + 2 cycle refs = 4 members.
  EXPECT_EQ(graph->scc_members(graph->node(p_df).scc_id).size(), 4u);

  // p^df is a feeder of p^cf's recursive rule node (different SCCs).
  const GraphNode& p_df_node = graph->node(p_df);
  std::vector<NodeId> feeders = graph->Feeders(p_df_node.parent);
  bool found = false;
  for (NodeId f : feeders) {
    if (f == p_df) found = true;
  }
  EXPECT_TRUE(found) << "p^df should feed the rule node above it";
}

TEST(RuleGoalGraphTest, P1BfstShape) {
  ParsedUnit unit;
  auto graph = BuildOrDie(kP1, unit);
  for (const GraphNode& n : graph->nodes()) {
    if (n.scc_is_trivial) {
      EXPECT_FALSE(n.is_leader);
      EXPECT_EQ(n.bfst_parent, kNoNode);
      EXPECT_TRUE(n.bfst_children.empty());
      continue;
    }
    if (n.is_leader) {
      EXPECT_EQ(n.bfst_parent, kNoNode);
      EXPECT_FALSE(n.bfst_children.empty());
    } else {
      ASSERT_NE(n.bfst_parent, kNoNode);
      EXPECT_EQ(graph->node(n.bfst_parent).scc_id, n.scc_id);
    }
  }
}

TEST(RuleGoalGraphTest, NonRecursiveProgramHasNoCycles) {
  ParsedUnit unit;
  auto graph = BuildOrDie(R"(
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
    ?- grandparent(a, Z).
  )", unit);
  GraphStats stats = graph->Stats();
  EXPECT_EQ(stats.cycle_refs, 0u);
  EXPECT_EQ(stats.nontrivial_sccs, 0u);
  EXPECT_EQ(stats.edb_leaves, 2u);
}

TEST(RuleGoalGraphTest, LinearRecursionSingleScc) {
  ParsedUnit unit;
  auto graph = BuildOrDie(R"(
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    ?- anc(a, W).
  )", unit);
  GraphStats stats = graph->Stats();
  // anc(a^c, W^f) expands; recursive subgoal anc(Z^d, W^f) has a
  // different adornment -> a second goal node, which then cycles to
  // itself. Exactly one nontrivial SCC.
  EXPECT_EQ(stats.nontrivial_sccs, 1u);
  EXPECT_EQ(stats.cycle_refs, 1u);
}

TEST(RuleGoalGraphTest, LeftRecursionTerminates) {
  // Strict top-down (Prolog) loops forever on this; graph construction
  // must terminate (§1.2 "avoiding the well-known left recursion
  // problems").
  ParsedUnit unit;
  auto graph = BuildOrDie(R"(
    t(X, Y) :- t(X, Z), e(Z, Y).
    t(X, Y) :- e(X, Y).
    ?- t(a, W).
  )", unit);
  EXPECT_GT(graph->Stats().cycle_refs, 0u);
}

TEST(RuleGoalGraphTest, MutualRecursionFormsOneScc) {
  ParsedUnit unit;
  auto graph = BuildOrDie(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    ?- even(N).
  )", unit);
  GraphStats stats = graph->Stats();
  EXPECT_EQ(stats.nontrivial_sccs, 1u);
  EXPECT_GE(stats.cycle_refs, 1u);
}

TEST(RuleGoalGraphTest, GraphSizeIndependentOfEdb) {
  // Theorem 2.1: the size of the graph is independent of the sizes of
  // the EDB relations.
  auto unit_small = Parse(StrCat(kP1, "\nq(1, 2). r(1, 2)."));
  ASSERT_TRUE(unit_small.ok());
  std::string big_facts = kP1;
  for (int i = 0; i < 500; ++i) {
    big_facts += StrCat("q(", i, ", ", i + 1, "). r(", i, ", ", i + 1, ").\n");
  }
  auto unit_big = Parse(big_facts);
  ASSERT_TRUE(unit_big.ok());
  auto strategy = MakeGreedyStrategy();
  auto g_small = RuleGoalGraph::Build(unit_small->program, *strategy);
  auto g_big = RuleGoalGraph::Build(unit_big->program, *strategy);
  ASSERT_TRUE(g_small.ok());
  ASSERT_TRUE(g_big.ok());
  EXPECT_EQ((*g_small)->size(), (*g_big)->size());
}

TEST(RuleGoalGraphTest, HeadConstantsPruneRules) {
  // A rule head with a constant that clashes with the goal constant
  // does not unify and produces no rule node.
  ParsedUnit unit;
  auto graph = BuildOrDie(R"(
    p(a, Y) :- r(Y).
    p(b, Y) :- s(Y).
    ?- p(a, Z).
  )", unit);
  // Only the p(a, Y) rule expands under p(a^c, Z^f).
  size_t p_rules = 0;
  for (const GraphNode& n : graph->nodes()) {
    if (n.kind == NodeKind::kRule &&
        graph->program().predicates().Name(n.rule.head.predicate) == "p") {
      ++p_rules;
    }
  }
  EXPECT_EQ(p_rules, 1u);
  EXPECT_EQ(graph->Stats().edb_leaves, 1u);  // only r
}

TEST(RuleGoalGraphTest, RepeatedVariablePatternsGetDistinctNodes) {
  // p(X, X) is not a variant of p(X, Y): both goal nodes must exist
  // (see the technicality in the proof of Thm. 2.1).
  ParsedUnit unit;
  auto graph = BuildOrDie(R"(
    p(X, Y) :- e(X, Y).
    s(X) :- p(X, X).
    t(X, Y) :- p(X, Y).
    ?- s(A), t(A, B).
  )", unit);
  std::multiset<std::string> sigs = GoalSignatures(*graph);
  // p appears once with repeated-var pattern (under s) and once plain.
  EXPECT_EQ(sigs.count("p^df/goal") + sigs.count("p^dd/goal") +
                sigs.count("p^ddd/goal"),
            1u);
  EXPECT_GE(sigs.count("e^df/edb") + sigs.count("e^dd/edb"), 1u);
}

TEST(RuleGoalGraphTest, NodeCapReturnsResourceExhausted) {
  auto unit = Parse(kP1);
  ASSERT_TRUE(unit.ok());
  auto strategy = MakeGreedyStrategy();
  GraphBuildOptions options;
  options.max_nodes = 3;
  auto graph = RuleGoalGraph::Build(unit->program, *strategy, options);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kResourceExhausted);
}

TEST(RuleGoalGraphTest, NoSipsGraphHasNoDynamicClasses) {
  auto unit = Parse(kP1);
  ASSERT_TRUE(unit.ok());
  auto strategy = MakeNoSipsStrategy();
  auto graph = RuleGoalGraph::Build(unit->program, *strategy);
  ASSERT_TRUE(graph.ok());
  for (const GraphNode& n : (*graph)->nodes()) {
    for (BindingClass c : n.adornment) {
      EXPECT_NE(c, BindingClass::kDynamic);
      EXPECT_NE(c, BindingClass::kExistential);
    }
  }
  // Without d-classes the two p occurrences collapse to one binding
  // pattern: fewer distinct goal nodes, more cycle refs.
  EXPECT_GE((*graph)->Stats().cycle_refs, 3u);
}

TEST(RuleGoalGraphTest, DotExportContainsAllNodes) {
  ParsedUnit unit;
  auto graph = BuildOrDie(kP1, unit);
  std::string dot = GraphToDot(*graph, &unit.database.symbols());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // cycle edges
  for (const GraphNode& n : graph->nodes()) {
    EXPECT_NE(dot.find(StrCat("n", n.id, " ")), std::string::npos);
  }
}

TEST(RuleGoalGraphTest, ToStringShowsLeaders) {
  ParsedUnit unit;
  auto graph = BuildOrDie(kP1, unit);
  std::string s = graph->ToString(&unit.database.symbols());
  EXPECT_NE(s.find("LEADER"), std::string::npos);
  EXPECT_NE(s.find("cycle_ref"), std::string::npos);
  EXPECT_NE(s.find("<=="), std::string::npos);
}

TEST(RuleGoalGraphTest, OutputPositionsSkipExistential) {
  GraphNode n;
  n.adornment = {BindingClass::kConstant, BindingClass::kExistential,
                 BindingClass::kFree, BindingClass::kDynamic};
  EXPECT_EQ(n.OutputPositions(), (std::vector<size_t>{0, 2, 3}));
}

}  // namespace
}  // namespace mpqe
