// Tests of the flight recorder (DESIGN.md §14): seqlock ring
// semantics (ordering, wraparound, torn-slot rejection under
// concurrent writers), the session observer tap, the stall watchdog
// end-to-end with fault injection (a parked SCC member must yield a
// diagnostic bundle naming the wedged SCC), and the engine surfaces —
// GET /debug/flight and Engine::FlightDumpJson. The concurrent-writer
// and watchdog cases double as the TSan coverage for the recorder's
// race-free-snapshot claim.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <mutex>

#include "datalog/parser.h"
#include "engine/engine.h"
#include "engine/evaluator.h"
#include "graph/rule_goal_graph.h"
#include "sips/strategy.h"

namespace mpqe {
namespace {

constexpr const char* kTcFacts = R"(
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 2). edge(2, 5).
)";

constexpr const char* kTcRules = R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
)";

std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// ---------------------------------------------------------------------------
// Ring semantics

TEST(FlightRecorderTest, RecordsComeBackTimeOrderedWithPayloadIntact) {
  FlightRecorder recorder({.ring_capacity = 64, .ring_count = 1});
  for (int i = 0; i < 10; ++i) {
    recorder.RecordEvent(FlightEventType::kSend, /*query_id=*/7, /*a=*/i,
                         /*b=*/i + 1, /*rows=*/static_cast<uint32_t>(i * 100),
                         /*aux=*/42, /*kind=*/3);
  }
  std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 10u);
  EXPECT_TRUE(std::is_sorted(
      records.begin(), records.end(),
      [](const FlightRecord& x, const FlightRecord& y) {
        return x.ts_ns < y.ts_ns;
      }));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].type, static_cast<uint8_t>(FlightEventType::kSend));
    EXPECT_EQ(records[i].query_id, 7u);
    EXPECT_EQ(records[i].a, i);
    EXPECT_EQ(records[i].b, i + 1);
    EXPECT_EQ(records[i].rows, static_cast<uint32_t>(i * 100));
    EXPECT_EQ(records[i].aux, 42u);
    EXPECT_EQ(records[i].kind, 3u);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
}

TEST(FlightRecorderTest, WraparoundKeepsOnlyTheNewestRecords) {
  // Capacity rounds up to a power of two; 16 stays 16. Writing 100
  // records must retain exactly the last 16, in order.
  FlightRecorder recorder({.ring_capacity = 16, .ring_count = 1});
  for (int i = 0; i < 100; ++i) {
    recorder.RecordEvent(FlightEventType::kNodeFire, /*query_id=*/1,
                         /*a=*/i);
  }
  std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 16u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, static_cast<int32_t>(84 + i));
  }
  EXPECT_EQ(recorder.recorded(), 100u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder({.ring_capacity = 5, .ring_count = 1});
  for (int i = 0; i < 8; ++i) {
    recorder.RecordEvent(FlightEventType::kSend, 1, i);
  }
  // 5 rounds up to 8: all 8 retained.
  EXPECT_EQ(recorder.Snapshot().size(), 8u);
  recorder.RecordEvent(FlightEventType::kSend, 1, 8);
  EXPECT_EQ(recorder.Snapshot().size(), 8u);  // 9th evicts the oldest
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearASnapshot) {
  // Hammer a deliberately tiny recorder (constant wraparound, threads
  // sharing rings) while snapshotting concurrently. Every record that
  // comes out must be one that some thread put in, intact: the payload
  // words are self-consistent (a encodes the writer, b the sequence,
  // rows/aux derive from both) so a torn slot that slipped through the
  // seqlock would be visible as a mismatched tuple. Run under TSan.
  FlightRecorder recorder({.ring_capacity = 64, .ring_count = 2});
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> start{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!start.load()) {
      }
      for (int i = 0; i < kPerWriter; ++i) {
        recorder.RecordEvent(FlightEventType::kDeliver,
                             /*query_id=*/static_cast<uint64_t>(w + 1),
                             /*a=*/w, /*b=*/i,
                             /*rows=*/static_cast<uint32_t>(w * 31 + i),
                             /*aux=*/static_cast<uint32_t>(i ^ (w << 16)));
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      for (const FlightRecord& r : recorder.Snapshot()) {
        ASSERT_EQ(r.type, static_cast<uint8_t>(FlightEventType::kDeliver));
        ASSERT_GE(r.a, 0);
        ASSERT_LT(r.a, kWriters);
        ASSERT_EQ(r.query_id, static_cast<uint64_t>(r.a + 1));
        ASSERT_EQ(r.rows, static_cast<uint32_t>(r.a * 31 + r.b));
        ASSERT_EQ(r.aux, static_cast<uint32_t>(r.b ^ (r.a << 16)));
      }
    }
  });
  start.store(true);
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  // After the dust settles the rings hold full, valid records.
  EXPECT_EQ(recorder.Snapshot().size(), 128u);
}

TEST(FlightRecorderTest, EventTypeNamesAreStableSchema) {
  // Serialized names are part of mpqe-flightdump-v1; renames break
  // check_trace.py --flight and downstream dashboards.
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kSessionStart),
               "session_start");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kSessionEnd),
               "session_end");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kSend), "send");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kDeliver), "deliver");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kNodeFire),
               "node_fire");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kPhase), "phase");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kTermination),
               "termination");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kStall), "stall");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kWatchdogDump),
               "watchdog_dump");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kPlanPrepare),
               "plan_prepare");
}

// ---------------------------------------------------------------------------
// Session tap

TEST(FlightRecorderTest, SessionTapRecordsTheWholeEventAlphabet) {
  auto unit = Parse(R"(
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 2).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  FlightRecorder recorder;
  EvaluationOptions options;
  options.flight = &recorder;
  options.query_id = 99;
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok()) << result.status();

  std::set<uint8_t> types;
  for (const FlightRecord& r : recorder.Snapshot()) {
    EXPECT_EQ(r.query_id, 99u);
    types.insert(r.type);
  }
  EXPECT_TRUE(types.count(static_cast<uint8_t>(FlightEventType::kSend)));
  EXPECT_TRUE(types.count(static_cast<uint8_t>(FlightEventType::kDeliver)));
  EXPECT_TRUE(types.count(static_cast<uint8_t>(FlightEventType::kNodeFire)));
  EXPECT_TRUE(types.count(static_cast<uint8_t>(FlightEventType::kPhase)));
  EXPECT_TRUE(
      types.count(static_cast<uint8_t>(FlightEventType::kTermination)));
}

// ---------------------------------------------------------------------------
// Watchdog + fault injection

TEST(FlightRecorderTest, WatchdogDumpNamesTheParkedScc) {
  // Park one member of the recursive SCC long enough for the watchdog
  // to fire: the diagnostic bundle must name that SCC as stuck, carry
  // its protocol state, and the run must still complete correctly
  // after the park ends. Run under TSan in CI (monitor thread +
  // workers + recorder all racing).
  auto unit = Parse(R"(
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 2). edge(2, 5).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_TRUE(unit->program.Validate(&unit->database).ok());
  auto strategy = MakeStrategyByName("greedy");
  ASSERT_TRUE(strategy.ok());
  auto built = RuleGoalGraph::Build(unit->program, **strategy);
  ASSERT_TRUE(built.ok()) << built.status();
  const RuleGoalGraph& graph = **built;

  // Find a nontrivial-SCC member to park (prefer a non-leader, as the
  // CLI's --park-scc does).
  NodeId park = kNoNode;
  int64_t park_scc = -1;
  for (NodeId id = 0; id < static_cast<NodeId>(graph.size()); ++id) {
    const GraphNode& n = graph.node(id);
    if (n.scc_is_trivial) continue;
    if (park == kNoNode) {
      park = id;
      park_scc = n.scc_id;
    }
    if (!n.is_leader) {
      park = id;
      park_scc = n.scc_id;
      break;
    }
  }
  ASSERT_NE(park, kNoNode) << "tc program must have a recursive SCC";

  FlightRecorder recorder;
  std::vector<FlightDump> dumps;
  std::mutex dumps_mutex;

  SessionOptions options;
  options.scheduler = SchedulerKind::kThreaded;
  options.workers = 2;
  options.query_id = 5;
  options.flight = &recorder;
  options.watchdog_stall_ms = 150;
  options.fault_park_node = park;
  options.fault_park_ms = 1200;
  options.flight_dump_sink = [&](const FlightDump& dump) {
    std::lock_guard<std::mutex> lock(dumps_mutex);
    dumps.push_back(dump);
  };

  auto result = RunSession(graph, unit->database, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // The park only delays; answers are unaffected.
  EXPECT_EQ(result->answers.size(), 4u);
  EXPECT_TRUE(result->ended_by_protocol);

  ASSERT_GE(dumps.size(), 1u) << "watchdog never fired";
  const FlightDump& dump = dumps.front();
  EXPECT_EQ(dump.reason, "stall");
  EXPECT_EQ(dump.query_id, 5u);
  EXPECT_GE(dump.stalled_ms, 150);
  EXPECT_EQ(dump.stuck_scc, park_scc) << "dump blames the wrong SCC";
  EXPECT_FALSE(dump.events.empty());

  // The stuck SCC's row exists, is nontrivial, and holds the queued
  // work the parked node is sitting on.
  bool found_scc = false;
  for (const FlightDumpScc& scc : dump.sccs) {
    if (scc.scc != dump.stuck_scc) continue;
    found_scc = true;
    EXPECT_TRUE(scc.nontrivial);
    EXPECT_GT(scc.members, 0u);
    EXPECT_GT(scc.queue_depth, 0u);
  }
  EXPECT_TRUE(found_scc);

  // The parked node's row carries its live queue depth.
  bool found_node = false;
  for (const FlightDumpNode& node : dump.nodes) {
    if (node.node != static_cast<int32_t>(park)) continue;
    found_node = true;
    EXPECT_EQ(node.scc, park_scc);
    EXPECT_GT(node.queue_depth, 0u);
    EXPECT_FALSE(node.label.empty());
  }
  EXPECT_TRUE(found_node);

  // The bundle serializes as schema v1 with its scalars present.
  const std::string json = dump.ToJson();
  EXPECT_NE(json.find("\"schema\": \"mpqe-flightdump-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"stall\""), std::string::npos);
  EXPECT_NE(json.find("\"stuck_scc\": "), std::string::npos);

  // One dump per stall episode, not one per monitor tick: the park
  // lasted ~8 watchdog intervals but each episode dumps once.
  EXPECT_LE(dumps.size(), 2u);
}

TEST(FlightRecorderTest, WatchdogQuietOnHealthyRuns) {
  auto unit = Parse(R"(
    edge(1, 2). edge(2, 3).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, W).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  FlightRecorder recorder;
  int dumps = 0;
  EvaluationOptions options;
  options.scheduler = SchedulerKind::kThreaded;
  options.workers = 2;
  options.flight = &recorder;
  options.watchdog_stall_ms = 2000;
  options.flight_dump_sink = [&](const FlightDump&) { ++dumps; };
  auto result = Evaluate(unit->program, unit->database, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(dumps, 0);
}

// ---------------------------------------------------------------------------
// Engine surfaces

TEST(FlightRecorderTest, EngineServesFlightDumpOverHttpAndApi) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.stats_port = 0;
  Engine engine(engine_options);
  ASSERT_TRUE(engine.stats_server_status().ok());
  ASSERT_NE(engine.flight_recorder(), nullptr);

  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(engine.RunAsync(*plan).get().ok());

  // No watchdog fired: both surfaces serve a "manual" dump of the
  // black box, which retains this run's events.
  const std::string json = engine.FlightDumpJson();
  EXPECT_NE(json.find("\"schema\": \"mpqe-flightdump-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"manual\""), std::string::npos);
  EXPECT_NE(json.find("\"session_start\""), std::string::npos);
  EXPECT_NE(json.find("\"session_end\""), std::string::npos);

  const std::string http =
      HttpGet(engine.stats_port(), "/debug/flight");
  EXPECT_NE(http.find("200"), std::string::npos);
  EXPECT_NE(http.find("mpqe-flightdump-v1"), std::string::npos);
  EXPECT_EQ(engine.watchdog_dumps(), 0u);
}

TEST(FlightRecorderTest, EngineFlightRecorderOffDisablesTheTap) {
  auto facts = Parse(kTcFacts);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.flight_recorder = false;
  Engine engine(engine_options);
  EXPECT_EQ(engine.flight_recorder(), nullptr);
  auto snapshot = engine.Attach(std::move(facts->database));
  auto plan = engine.Prepare(snapshot, kTcRules);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(engine.RunAsync(*plan).get().ok());
  // A dump is still answerable — just empty of events.
  const std::string json = engine.FlightDumpJson();
  EXPECT_NE(json.find("\"schema\": \"mpqe-flightdump-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"events\": [\n  ]"), std::string::npos);
}

}  // namespace
}  // namespace mpqe
